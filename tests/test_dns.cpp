// DNS wire format and zone answering logic.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "dns/zone.hpp"

namespace dcpl::dns {
namespace {

TEST(DnsNames, CanonicalForm) {
  EXPECT_EQ(canonical_name("WWW.Example.COM."), "www.example.com");
  EXPECT_EQ(canonical_name(""), "");
  EXPECT_EQ(canonical_name("."), "");
}

TEST(DnsNames, ZoneMembership) {
  EXPECT_TRUE(name_in_zone("www.example.com", "example.com"));
  EXPECT_TRUE(name_in_zone("example.com", "example.com"));
  EXPECT_TRUE(name_in_zone("a.b.example.com", "com"));
  EXPECT_TRUE(name_in_zone("anything.at.all", ""));  // root
  EXPECT_FALSE(name_in_zone("example.org", "example.com"));
  EXPECT_FALSE(name_in_zone("notexample.com", "example.com"));
}

TEST(DnsNames, ParentDomain) {
  EXPECT_EQ(parent_domain("www.example.com"), "example.com");
  EXPECT_EQ(parent_domain("com"), "");
}

TEST(DnsNames, EncodeNameWireFormat) {
  Bytes wire = encode_name("www.example.com");
  Bytes expected = {3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e',
                    3, 'c', 'o', 'm', 0};
  EXPECT_EQ(wire, expected);
  EXPECT_THROW(encode_name("a..b"), std::invalid_argument);
  EXPECT_THROW(encode_name(std::string(64, 'x') + ".com"),
               std::invalid_argument);
}

TEST(DnsRdata, Ipv4Helpers) {
  EXPECT_EQ(a_rdata("192.0.2.1"), (Bytes{192, 0, 2, 1}));
  EXPECT_EQ(rdata_to_ipv4(Bytes{10, 0, 0, 255}), "10.0.0.255");
  EXPECT_THROW(a_rdata("1.2.3"), std::invalid_argument);
  EXPECT_THROW(a_rdata("1.2.3.999"), std::invalid_argument);
}

TEST(DnsRdata, NameHelpers) {
  Bytes rd = name_rdata("ns1.example.com");
  auto back = rdata_to_name(rd);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "ns1.example.com");
}

Message sample_query() {
  Message q;
  q.id = 0xbeef;
  q.recursion_desired = true;
  q.questions.push_back(Question{"www.example.com", RecordType::kA, kClassIn});
  return q;
}

TEST(DnsMessage, QueryRoundTrip) {
  Message q = sample_query();
  auto decoded = Message::decode(q.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 0xbeef);
  EXPECT_FALSE(decoded->is_response);
  EXPECT_TRUE(decoded->recursion_desired);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].qname, "www.example.com");
  EXPECT_EQ(decoded->questions[0].qtype, RecordType::kA);
}

TEST(DnsMessage, ResponseWithAllSectionsRoundTrip) {
  Message m = sample_query();
  m.is_response = true;
  m.authoritative = true;
  m.recursion_available = true;
  m.rcode = Rcode::kNxDomain;
  m.answers.push_back(ResourceRecord{"www.example.com", RecordType::kA,
                                     kClassIn, 60, a_rdata("192.0.2.7")});
  m.authorities.push_back(ResourceRecord{"example.com", RecordType::kNs,
                                         kClassIn, 300,
                                         name_rdata("ns1.example.com")});
  m.additionals.push_back(ResourceRecord{"ns1.example.com", RecordType::kA,
                                         kClassIn, 300, a_rdata("192.0.2.53")});
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->is_response);
  EXPECT_TRUE(d->authoritative);
  EXPECT_TRUE(d->recursion_available);
  EXPECT_EQ(d->rcode, Rcode::kNxDomain);
  ASSERT_EQ(d->answers.size(), 1u);
  EXPECT_EQ(rdata_to_ipv4(d->answers[0].rdata), "192.0.2.7");
  ASSERT_EQ(d->authorities.size(), 1u);
  EXPECT_EQ(rdata_to_name(d->authorities[0].rdata).value(),
            "ns1.example.com");
  ASSERT_EQ(d->additionals.size(), 1u);
}

TEST(DnsMessage, DecodeRejectsTruncation) {
  Bytes enc = sample_query().encode();
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(Message::decode(BytesView(enc).first(len)).ok())
        << "len=" << len;
  }
}

TEST(DnsMessage, DecodeHandlesCompressionPointers) {
  // Hand-build a response where the answer name is a pointer to the
  // question name at offset 12.
  Message q = sample_query();
  Bytes enc = q.encode();
  // Patch counts: 1 answer.
  enc[7] = 1;
  // Append answer: pointer 0xc00c, type A, class IN, ttl 60, rdlen 4, rdata.
  Bytes answer = {0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00,
                  0x00, 0x3c, 0x00, 0x04, 192,  0,    2,    1};
  append(enc, answer);
  auto d = Message::decode(enc);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->answers.size(), 1u);
  EXPECT_EQ(d->answers[0].name, "www.example.com");
  EXPECT_EQ(rdata_to_ipv4(d->answers[0].rdata), "192.0.2.1");
}

TEST(DnsMessage, DecodeRejectsPointerLoops) {
  // Question name is a pointer to itself.
  Bytes enc = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00,
               0x00, 0x00, 0x00, 0x00,
               0xc0, 0x0c,  // name: pointer to offset 12 (itself)
               0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(Message::decode(enc).ok());
}

Zone example_zone() {
  Zone z("example.com");
  z.add_a("www.example.com", "192.0.2.10");
  z.add_a("www.example.com", "192.0.2.11");
  z.add_cname("alias.example.com", "www.example.com");
  z.add_cname("external.example.com", "cdn.other.net");
  z.add_txt("example.com", "v=spf1 -all");
  z.delegate("sub.example.com", "ns1.sub.example.com", "192.0.2.53");
  return z;
}

Message query_for(std::string_view name, RecordType type = RecordType::kA) {
  Message q;
  q.id = 1;
  q.questions.push_back(Question{std::string(name), type, kClassIn});
  return q;
}

TEST(Zone, AnswersExactMatch) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("www.example.com"));
  EXPECT_TRUE(resp.is_response);
  EXPECT_TRUE(resp.authoritative);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_EQ(resp.answers.size(), 2u);
}

TEST(Zone, FollowsCnameWithinZone) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("alias.example.com"));
  ASSERT_EQ(resp.answers.size(), 3u);  // CNAME + 2 A records
  EXPECT_EQ(resp.answers[0].type, RecordType::kCname);
  EXPECT_EQ(resp.answers[1].type, RecordType::kA);
}

TEST(Zone, CnameOutOfZoneReturnsJustCname) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("external.example.com"));
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(resp.answers[0].type, RecordType::kCname);
}

TEST(Zone, ReferralForDelegatedChild) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("deep.sub.example.com"));
  EXPECT_FALSE(resp.authoritative);
  EXPECT_TRUE(resp.answers.empty());
  ASSERT_EQ(resp.authorities.size(), 1u);
  EXPECT_EQ(resp.authorities[0].type, RecordType::kNs);
  ASSERT_EQ(resp.additionals.size(), 1u);
  EXPECT_EQ(rdata_to_ipv4(resp.additionals[0].rdata), "192.0.2.53");
}

TEST(Zone, NxDomainForMissingName) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("missing.example.com"));
  EXPECT_EQ(resp.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(resp.answers.empty());
}

TEST(Zone, NoDataForExistingNameWrongType) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("www.example.com", RecordType::kTxt));
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answers.empty());
}

TEST(Zone, ServFailForOutOfZoneQuery) {
  Zone z = example_zone();
  Message resp = z.answer(query_for("www.other.org"));
  EXPECT_EQ(resp.rcode, Rcode::kServFail);
}

TEST(Zone, RejectsOutOfZoneRecords) {
  Zone z("example.com");
  EXPECT_THROW(z.add_a("www.other.org", "192.0.2.1"), std::invalid_argument);
}

TEST(Zone, RootZoneDelegatesTlds) {
  Zone root("");
  root.delegate("com", "a.gtld-servers.net", "192.5.6.30");
  Message resp = root.answer(query_for("www.example.com"));
  ASSERT_EQ(resp.authorities.size(), 1u);
  EXPECT_EQ(resp.authorities[0].name, "com");
}

}  // namespace
}  // namespace dcpl::dns
