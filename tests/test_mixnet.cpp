// Mix-net (§3.1.2, Figure 1): delivery through a chain, batching semantics,
// the paper's T2 table, and timing-correlation resistance.
#include "systems/mixnet/mixnet.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::mixnet {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::vector<std::unique_ptr<MixNode>> mixes;
  std::vector<std::unique_ptr<Receiver>> receivers;
  std::vector<std::unique_ptr<Sender>> senders;

  Fixture(std::size_t n_mixes, std::size_t batch, std::size_t n_senders,
          std::size_t n_receivers, net::Time max_hold = 1'000'000) {
    for (std::size_t i = 0; i < n_mixes; ++i) {
      std::string addr = "mix" + std::to_string(i + 1);
      book.set(addr, core::benign_identity("addr:" + addr));
      mixes.push_back(
          std::make_unique<MixNode>(addr, batch, max_hold, log, book, 10 + i));
      sim.add_node(*mixes.back());
    }
    for (std::size_t i = 0; i < n_receivers; ++i) {
      std::string addr = "rcv" + std::to_string(i + 1);
      book.set(addr, core::benign_identity("addr:" + addr));
      receivers.push_back(std::make_unique<Receiver>(addr, log, book, 50 + i));
      sim.add_node(*receivers.back());
    }
    for (std::size_t i = 0; i < n_senders; ++i) {
      std::string addr = "10.1.0." + std::to_string(i + 1);
      std::string user = "user:sender" + std::to_string(i);
      book.set(addr, core::sensitive_identity(user, "network"));
      senders.push_back(std::make_unique<Sender>(addr, user, log, 100 + i));
      sim.add_node(*senders.back());
    }
  }

  std::vector<HopInfo> chain() const {
    std::vector<HopInfo> out;
    for (const auto& m : mixes) {
      out.push_back(HopInfo{m->address(), m->key().public_key});
    }
    return out;
  }

  HopInfo receiver_info(std::size_t i) const {
    return HopInfo{receivers[i]->address(), receivers[i]->key().public_key};
  }
};

TEST(Mixnet, DeliversThroughThreeMixes) {
  Fixture f(3, 1, 1, 1);
  f.senders[0]->send_message("hello bob", f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  ASSERT_EQ(f.receivers[0]->deliveries().size(), 1u);
  EXPECT_EQ(f.receivers[0]->deliveries()[0].message, "hello bob");
  // The receiver heard from the last mix, not from the sender.
  EXPECT_EQ(f.receivers[0]->deliveries()[0].from, "mix3");
  for (auto& m : f.mixes) EXPECT_EQ(m->processed(), 1u);
}

// Paper table §3.1.2: Sender (▲,●), Mix 1 (▲,⊙), Mix N (△,⊙), Receiver (△,●).
TEST(Mixnet, TableT2TuplesMatchPaper) {
  Fixture f(3, 1, 1, 1);
  f.senders[0]->send_message("secret", f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.1.0.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("mix1").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("mix2").to_string(), "(△, ⊙)");
  EXPECT_EQ(a.tuple_for("mix3").to_string(), "(△, ⊙)");
  EXPECT_EQ(a.tuple_for("rcv1").to_string(), "(△, ●)");
  EXPECT_TRUE(a.is_decoupled("10.1.0.1"));
}

TEST(Mixnet, FullChainCollusionRecouples) {
  Fixture f(3, 1, 1, 1);
  f.senders[0]->send_message("secret", f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.coalition_recouples({"mix1", "mix2", "mix3"}));
  EXPECT_TRUE(a.coalition_recouples({"mix1", "mix2", "mix3", "rcv1"}));
  auto min_size = a.min_recoupling_coalition("10.1.0.1");
  ASSERT_TRUE(min_size.has_value());
  // All mixes plus the receiver are needed.
  EXPECT_EQ(*min_size, 4u);
}

TEST(Mixnet, BatchingHoldsMessagesUntilThreshold) {
  Fixture f(1, 3, 3, 1, /*max_hold=*/0);  // no flush timer
  // Two messages: below threshold, nothing delivered.
  f.senders[0]->send_message("m0", f.chain(), f.receiver_info(0), f.sim);
  f.senders[1]->send_message("m1", f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  EXPECT_EQ(f.receivers[0]->deliveries().size(), 0u);
  // Third message completes the batch.
  f.senders[2]->send_message("m2", f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  EXPECT_EQ(f.receivers[0]->deliveries().size(), 3u);
}

TEST(Mixnet, HoldTimerFlushesPartialBatch) {
  Fixture f(1, 100, 1, 1, /*max_hold=*/5000);
  f.senders[0]->send_message("lonely", f.chain(), f.receiver_info(0), f.sim);
  net::Time end = f.sim.run();
  ASSERT_EQ(f.receivers[0]->deliveries().size(), 1u);
  EXPECT_GE(end, 5000u);
}

TEST(Mixnet, BatchedDeliveryLeavesSimultaneously) {
  Fixture f(1, 4, 4, 4, 0);
  for (int i = 0; i < 4; ++i) {
    f.senders[i]->send_message("m" + std::to_string(i), f.chain(),
                               f.receiver_info(i), f.sim);
  }
  f.sim.run();
  // All four receivers got their message, all at the same delivery time
  // (same flush, same per-link latency).
  std::set<net::Time> times;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(f.receivers[i]->deliveries().size(), 1u);
    times.insert(f.receivers[i]->deliveries()[0].time);
  }
  EXPECT_EQ(times.size(), 1u);
}

TEST(Mixnet, MessagesRoutedToCorrectReceivers) {
  Fixture f(2, 1, 6, 3);
  for (int i = 0; i < 6; ++i) {
    f.senders[i]->send_message("for-" + std::to_string(i % 3), f.chain(),
                               f.receiver_info(i % 3), f.sim);
  }
  f.sim.run();
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(f.receivers[r]->deliveries().size(), 2u) << r;
    for (const auto& d : f.receivers[r]->deliveries()) {
      EXPECT_EQ(d.message, "for-" + std::to_string(r));
    }
  }
}

TEST(Mixnet, MixesNeverSeePlaintextOrFinalDestination) {
  Fixture f(3, 1, 1, 1);
  f.senders[0]->send_message("the secret text", f.chain(), f.receiver_info(0),
                             f.sim);
  f.sim.run();
  // Mix 1 and 2 must not know the receiver; no mix may know the message.
  for (const char* mix : {"mix1", "mix2", "mix3"}) {
    for (const auto& obs : f.log.for_party(mix)) {
      EXPECT_EQ(obs.atom.label.find("secret"), std::string::npos) << mix;
      EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveData) << mix;
    }
  }
  for (const char* mix : {"mix1", "mix2"}) {
    for (const auto& obs : f.log.for_party(mix)) {
      EXPECT_EQ(obs.atom.label.find("rcv"), std::string::npos) << mix;
    }
  }
}

TEST(Mixnet, RequiresAtLeastOneMix) {
  Fixture f(1, 1, 1, 1);
  EXPECT_THROW(
      f.senders[0]->send_message("x", {}, f.receiver_info(0), f.sim),
      std::invalid_argument);
}

TEST(Mixnet, GarbageToMixIsDropped) {
  Fixture f(1, 1, 1, 1);
  f.sim.send(net::Packet{"10.1.0.1", "mix1", Bytes(80, 1),
                         f.sim.new_context(), "mix"});
  f.sim.run();
  EXPECT_EQ(f.mixes[0]->processed(), 0u);
}

// Timing attack (§4.3): a global observer correlating k-th ingress with
// k-th egress succeeds against batch=1 streaming but degrades with batching.
double timing_attack_success(std::size_t batch, std::size_t n_senders,
                             std::uint64_t seed) {
  Fixture f(1, batch, n_senders, n_senders, 0);
  std::vector<std::pair<net::Time, std::string>> ingress;  // (time, sender)
  std::vector<std::pair<net::Time, std::string>> egress;   // (time, receiver)
  f.sim.add_wiretap([&](const net::TraceEntry& e) {
    if (e.dst == "mix1") ingress.emplace_back(e.time, e.src);
    if (e.dst.starts_with("rcv")) egress.emplace_back(e.time, e.dst);
  });

  // Sender i messages receiver i; stagger sends so arrival order is unique.
  XoshiroRng order_rng(seed);
  for (std::size_t i = 0; i < n_senders; ++i) {
    const net::Time when = 1 + i * 100;
    f.sim.at(when, [&f, i] {
      f.senders[i]->send_message("m", f.chain(), f.receiver_info(i), f.sim);
    });
  }
  f.sim.run();
  if (ingress.size() != n_senders || egress.size() != n_senders) return -1;

  // FIFO guess: k-th in = k-th out.
  std::size_t correct = 0;
  for (std::size_t k = 0; k < n_senders; ++k) {
    // Ground truth: sender at 10.1.0.(i+1) messaged rcv(i+1).
    std::string expected_rcv =
        "rcv" + ingress[k].second.substr(std::string("10.1.0.").size());
    if (egress[k].second == expected_rcv) ++correct;
  }
  return static_cast<double>(correct) / n_senders;
}

TEST(Mixnet, StreamingModeIsFullyCorrelatable) {
  EXPECT_DOUBLE_EQ(timing_attack_success(1, 16, 7), 1.0);
}

TEST(Mixnet, BatchingDefeatsTimingCorrelation) {
  double rate = timing_attack_success(16, 16, 7);
  ASSERT_GE(rate, 0.0);
  // Random matching within a batch of 16: expected ~1/16.
  EXPECT_LT(rate, 0.35);
}


TEST(Mixnet, ChaffIsDiscardedByReceiver) {
  Fixture f(2, 1, 1, 1);
  f.senders[0]->send_chaff(f.chain(), f.receiver_info(0), f.sim);
  f.senders[0]->send_message("real", f.chain(), f.receiver_info(0), f.sim);
  f.senders[0]->send_chaff(f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  ASSERT_EQ(f.receivers[0]->deliveries().size(), 1u);
  EXPECT_EQ(f.receivers[0]->deliveries()[0].message, "real");
  EXPECT_EQ(f.receivers[0]->chaff_received(), 2u);
}

TEST(Mixnet, ChaffIsIndistinguishableOnTheWire) {
  // A wiretap sees the same packet sizes for chaff and real messages of the
  // same length (both are onion-encrypted blobs).
  Fixture f(1, 1, 1, 1);
  std::vector<std::size_t> sizes;
  f.sim.add_wiretap([&](const net::TraceEntry& e) {
    if (e.dst == "mix1") sizes.push_back(e.size);
  });
  f.senders[0]->send_chaff(f.chain(), f.receiver_info(0), f.sim);
  // Same length as "CHAFF:" + 16 hex chars (22 bytes).
  f.senders[0]->send_message("exactly-22-characters!", f.chain(),
                             f.receiver_info(0), f.sim);
  f.sim.run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], sizes[1]);
}

TEST(Mixnet, ChaffCarriesNoSensitiveData) {
  Fixture f(1, 1, 1, 1);
  f.senders[0]->send_chaff(f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  // Chaff reveals the sender participates (▲) but no data anywhere.
  for (const auto& party : f.log.parties()) {
    EXPECT_FALSE(a.tuple_for(party).sensitive_data) << party;
  }
}

TEST(Mixnet, ChaffHidesActiveSenders) {
  // Without chaff only the 2 real senders emit traffic (activity leak);
  // with every sender emitting chaff, the active set is hidden.
  auto active_senders = [](bool with_chaff) {
    Fixture f(1, 1, 8, 8, 0);
    std::set<std::string> seen;
    f.sim.add_wiretap([&](const net::TraceEntry& e) {
      if (e.dst == "mix1") seen.insert(e.src);
    });
    for (int i = 0; i < 8; ++i) {
      if (i < 2) {
        f.senders[i]->send_message("m", f.chain(), f.receiver_info(i), f.sim);
      } else if (with_chaff) {
        f.senders[i]->send_chaff(f.chain(), f.receiver_info(i), f.sim);
      }
    }
    f.sim.run();
    return seen.size();
  };
  EXPECT_EQ(active_senders(false), 2u);
  EXPECT_EQ(active_senders(true), 8u);
}


// Chaum's untraceable return addresses (cited via [6] in §3.1.2).
TEST(MixnetReply, ReceiverCanReplyWithoutKnowingSender) {
  Fixture f(3, 1, 1, 1);
  ReplyBlock block = f.senders[0]->make_reply_block(f.chain(), f.sim);

  // The receiver (or anyone holding the block) replies through the chain.
  send_reply(block, "meet at noon", "rcv1", f.sim);
  f.sim.run();

  ASSERT_EQ(f.senders[0]->replies().size(), 1u);
  EXPECT_EQ(f.senders[0]->replies()[0], "meet at noon");
}

TEST(MixnetReply, ReplyBlockEncodeDecodeRoundTrip) {
  Fixture f(2, 1, 1, 1);
  ReplyBlock block = f.senders[0]->make_reply_block(f.chain(), f.sim);
  auto decoded = ReplyBlock::decode(block.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first_hop, block.first_hop);
  EXPECT_EQ(decoded->header, block.header);
  EXPECT_FALSE(ReplyBlock::decode(Bytes(3)).ok());
}

TEST(MixnetReply, FullAnonymousConversation) {
  // Forward message carries a serialized reply block; the receiver parses
  // it and answers — never learning the sender's address.
  Fixture f(3, 1, 1, 1);
  ReplyBlock block = f.senders[0]->make_reply_block(f.chain(), f.sim);
  std::string payload = "question|" + to_hex(block.encode());
  f.senders[0]->send_message(payload, f.chain(), f.receiver_info(0), f.sim);
  f.sim.run();
  ASSERT_EQ(f.receivers[0]->deliveries().size(), 1u);

  // Receiver-side: extract the block from the delivered message and reply.
  const std::string& got = f.receivers[0]->deliveries()[0].message;
  auto sep = got.find('|');
  ASSERT_NE(sep, std::string::npos);
  auto parsed = ReplyBlock::decode(from_hex(got.substr(sep + 1)));
  ASSERT_TRUE(parsed.ok());
  send_reply(parsed.value(), "the answer", "rcv1", f.sim);
  f.sim.run();

  ASSERT_EQ(f.senders[0]->replies().size(), 1u);
  EXPECT_EQ(f.senders[0]->replies()[0], "the answer");
}

TEST(MixnetReply, MixesNeverSeeReplyPlaintextOrSenderBeforeLastHop) {
  Fixture f(3, 1, 1, 1);
  ReplyBlock block = f.senders[0]->make_reply_block(f.chain(), f.sim);
  send_reply(block, "needle-reply", "rcv1", f.sim);
  f.sim.run();
  // No mix may log the reply text; mixes 1 and 2 must not know the sender.
  for (const char* mix : {"mix1", "mix2", "mix3"}) {
    for (const auto& obs : f.log.for_party(mix)) {
      EXPECT_EQ(obs.atom.label.find("needle"), std::string::npos) << mix;
    }
  }
  for (const char* mix : {"mix1", "mix2"}) {
    for (const auto& obs : f.log.for_party(mix)) {
      EXPECT_EQ(obs.atom.label.find("10.1.0.1"), std::string::npos) << mix;
    }
  }
}

TEST(MixnetReply, ReplyBlockIsSingleUse) {
  Fixture f(2, 1, 1, 1);
  ReplyBlock block = f.senders[0]->make_reply_block(f.chain(), f.sim);
  send_reply(block, "first", "rcv1", f.sim);
  f.sim.run();
  EXPECT_EQ(f.senders[0]->replies().size(), 1u);
  // Replay: the sender has forgotten the keys; nothing is accepted.
  send_reply(block, "second", "rcv1", f.sim);
  f.sim.run();
  EXPECT_EQ(f.senders[0]->replies().size(), 1u);
}

TEST(MixnetReply, RepliesBatchLikeForwardTraffic) {
  Fixture f(1, 3, 3, 1, 0);  // batch=3, no hold timer
  std::vector<ReplyBlock> blocks;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(f.senders[i]->make_reply_block(f.chain(), f.sim));
  }
  send_reply(blocks[0], "r0", "rcv1", f.sim);
  send_reply(blocks[1], "r1", "rcv1", f.sim);
  f.sim.run();
  // Two replies held below the batch threshold.
  EXPECT_TRUE(f.senders[0]->replies().empty());
  send_reply(blocks[2], "r2", "rcv1", f.sim);
  f.sim.run();
  EXPECT_EQ(f.senders[0]->replies().size(), 1u);
  EXPECT_EQ(f.senders[1]->replies().size(), 1u);
  EXPECT_EQ(f.senders[2]->replies().size(), 1u);
}

TEST(MixnetReply, RequiresAtLeastOneMix) {
  Fixture f(1, 1, 1, 1);
  EXPECT_THROW(f.senders[0]->make_reply_block({}, f.sim),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcpl::systems::mixnet
