// Wire-buffer tier: varint edge widths, writer/reader round trips, reader
// view aliasing (zero-copy contract), and arena reuse/grow behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "common/io.hpp"
#include "common/wire.hpp"

namespace dcpl::wire {
namespace {

Bytes materialize(BytesView v) { return Bytes(v.begin(), v.end()); }

// --- varint ---------------------------------------------------------------

TEST(Varint, WidthBoundaries) {
  // RFC 9000 §16: 6/14/30/62 usable bits per width.
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(0x3F), 1u);
  EXPECT_EQ(varint_size(0x40), 2u);
  EXPECT_EQ(varint_size(0x3FFF), 2u);
  EXPECT_EQ(varint_size(0x4000), 4u);
  EXPECT_EQ(varint_size(0x3FFFFFFF), 4u);
  EXPECT_EQ(varint_size(0x40000000), 8u);
  EXPECT_EQ(varint_size(kVarintMax), 8u);
  EXPECT_THROW(varint_size(kVarintMax + 1), std::invalid_argument);
}

TEST(Varint, KnownEncodings) {
  // Worked examples from RFC 9000 appendix A.1.
  auto enc = [](std::uint64_t v) {
    Bytes out;
    varint_append(v, out);
    return to_hex(out);
  };
  EXPECT_EQ(enc(37), "25");
  EXPECT_EQ(enc(15293), "7bbd");
  EXPECT_EQ(enc(494878333), "9d7f3e7d");
  EXPECT_EQ(enc(151288809941952652ull), "c2197c5eff14e88c");
}

TEST(Varint, RoundTripAtEveryBoundary) {
  const std::uint64_t cases[] = {
      0,          1,          0x3F,       0x40,         0x3FFF,
      0x4000,     0x3FFFFFFF, 0x40000000, 0x1234567890, kVarintMax - 1,
      kVarintMax,
  };
  for (std::uint64_t v : cases) {
    Bytes out;
    varint_append(v, out);
    ASSERT_EQ(out.size(), varint_size(v)) << v;
    std::size_t pos = 0;
    EXPECT_EQ(varint_decode(out, pos), v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(Varint, RoundTripPropertySweep) {
  // Deterministic xorshift sweep across the value space.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  Bytes buf;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t v = x & kVarintMax;
    values.push_back(v);
    varint_append(v, buf);
  }
  std::size_t pos = 0;
  for (std::uint64_t v : values) {
    ASSERT_EQ(varint_decode(buf, pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncationThrows) {
  Bytes out;
  varint_append(0x4000, out);  // 4-byte encoding
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    Bytes partial(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(cut));
    std::size_t pos = 0;
    EXPECT_THROW(varint_decode(partial, pos), ParseError) << cut;
  }
}

// --- writer / reader round trips ------------------------------------------

TEST(WireWriterReader, OwnedModeRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  w.varint(15293);
  const Bytes body = to_bytes("payload-bytes");
  w.vec(body);
  w.raw(to_bytes("tail"));
  Bytes frame = std::move(w).take();

  WireReader r(frame);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.varint(), 15293u);
  EXPECT_EQ(materialize(r.vec()), body);
  EXPECT_EQ(to_string(r.rest()), "tail");
  EXPECT_TRUE(r.done());
}

TEST(WireWriterReader, FixedWidthIsBigEndianLikeByteWriter) {
  // The wire writer must stay byte-compatible with the owned ByteWriter so
  // framed protocols can migrate hop by hop.
  WireWriter w;
  w.u16(0xBEEF);
  w.u32(0xCAFEBABE);
  w.u64(0x1122334455667788ull);
  ByteWriter ref;
  ref.u16(0xBEEF);
  ref.u32(0xCAFEBABE);
  ref.u64(0x1122334455667788ull);
  EXPECT_EQ(std::move(w).take(), std::move(ref).take());
}

TEST(WireWriterReader, ReaderViewsAliasTheInputBuffer) {
  WireWriter w;
  w.vec(to_bytes("first"));
  w.vec(to_bytes("second-longer-chunk"));
  const Bytes frame = std::move(w).take();

  WireReader r(frame);
  BytesView a = r.vec();
  BytesView b = r.vec();
  // Zero-copy contract: views point into `frame`, not into fresh storage.
  const std::uint8_t* lo = frame.data();
  const std::uint8_t* hi = frame.data() + frame.size();
  EXPECT_GE(a.data(), lo);
  EXPECT_LE(a.data() + a.size(), hi);
  EXPECT_GE(b.data(), lo);
  EXPECT_LE(b.data() + b.size(), hi);
  EXPECT_EQ(to_string(a), "first");
  EXPECT_EQ(to_string(b), "second-longer-chunk");
}

TEST(WireWriterReader, ReaderTruncationThrows) {
  WireWriter w;
  w.u32(7);
  const Bytes frame = std::move(w).take();
  WireReader r(frame);
  EXPECT_THROW(r.u64(), ParseError);
  WireReader r2(frame);
  r2.u32();
  EXPECT_THROW(r2.view(1), ParseError);
  // vec() whose length prefix exceeds the remaining bytes.
  Bytes bogus;
  varint_append(100, bogus);
  bogus.push_back(0x01);
  WireReader r3(bogus);
  EXPECT_THROW(r3.vec(), ParseError);
}

TEST(WireWriterReader, ModeMismatchThrows) {
  WireWriter owned;
  owned.u8(1);
  EXPECT_THROW(owned.finish(), std::logic_error);

  WireArena arena;
  WireWriter in_arena(arena);
  in_arena.u8(1);
  EXPECT_THROW(std::move(in_arena).take(), std::logic_error);
}

// --- arena ----------------------------------------------------------------

TEST(WireArena, ResetReusesTheSameChunk) {
  WireArena arena(1024);
  std::uint8_t* first = arena.alloc(100);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 100u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Same storage comes back: steady-state framing allocates nothing new.
  std::uint8_t* again = arena.alloc(100);
  EXPECT_EQ(again, first);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(WireArena, OversizedRequestGetsDedicatedChunk) {
  WireArena arena(64);
  arena.alloc(16);
  arena.alloc(1000);  // larger than the chunk size
  EXPECT_EQ(arena.chunk_count(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 1064u);
}

TEST(WireArena, GrowInPlaceOnlyForLatestAllocation) {
  WireArena arena(1024);
  std::uint8_t* a = arena.alloc(64);
  EXPECT_TRUE(arena.grow_in_place(a, 64, 128));
  std::uint8_t* b = arena.alloc(32);
  // `a` is no longer the high-water allocation; it cannot extend.
  EXPECT_FALSE(arena.grow_in_place(a, 128, 256));
  EXPECT_TRUE(arena.grow_in_place(b, 32, 64));
  // Exhausting the chunk tail forces a refusal.
  EXPECT_FALSE(arena.grow_in_place(b, 64, 4096));
}

TEST(WireArena, WriterGrowsAcrossReserveBoundary) {
  WireArena arena(256);
  WireWriter w(arena, /*reserve=*/8);
  Bytes want;
  for (int i = 0; i < 300; ++i) {
    w.u8(static_cast<std::uint8_t>(i));
    want.push_back(static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(materialize(w.finish()), want);
}

TEST(WireArena, WriterRelocatesWhenAnotherAllocationIntervenes) {
  WireArena arena(4096);
  WireWriter w(arena, /*reserve=*/16);
  w.raw(to_bytes("0123456789abcdef"));  // fills the reserve exactly
  arena.alloc(1);  // steal the high-water mark: next grow must relocate
  w.raw(to_bytes("-tail"));
  EXPECT_EQ(to_string(w.finish()), "0123456789abcdef-tail");
}

TEST(WireArena, PerEventResetPattern) {
  // The relay/mix-hop usage pattern: frame one message per event, reset
  // between events, never accumulate.
  WireArena arena(1024);
  std::size_t reserved_after_warmup = 0;
  for (int event = 0; event < 50; ++event) {
    arena.reset();
    WireWriter w(arena, 64);
    w.varint(static_cast<std::uint64_t>(event));
    w.vec(to_bytes("body"));
    WireReader r(w.finish());
    EXPECT_EQ(r.varint(), static_cast<std::uint64_t>(event));
    EXPECT_EQ(to_string(r.vec()), "body");
    EXPECT_TRUE(r.done());
    if (event == 0) reserved_after_warmup = arena.bytes_reserved();
  }
  // Steady state: no chunk growth after the first event.
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
}

}  // namespace
}  // namespace dcpl::wire
