// Tests for the address-interning layer behind the simulator hot path:
// dense first-use ids, stable name round-trips, const lookup, and the
// packed (src<<32)|dst link-key helpers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/address.hpp"
#include "net/sim.hpp"

namespace dcpl::net {
namespace {

TEST(AddressInterner, AssignsDenseIdsInFirstUseOrder) {
  AddressInterner interner;
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.intern("alice"), 0u);
  EXPECT_EQ(interner.intern("bob"), 1u);
  EXPECT_EQ(interner.intern("carol"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(AddressInterner, InternIsIdempotent) {
  AddressInterner interner;
  const AddressId a = interner.intern("relay");
  EXPECT_EQ(interner.intern("relay"), a);
  EXPECT_EQ(interner.intern("relay"), a);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(AddressInterner, NameRoundTripsThroughId) {
  AddressInterner interner;
  const AddressId a = interner.intern("gateway");
  const AddressId b = interner.intern("origin");
  EXPECT_EQ(interner.name(a), "gateway");
  EXPECT_EQ(interner.name(b), "origin");
}

TEST(AddressInterner, LookupIsConstAndReturnsNulloptForUnknown) {
  AddressInterner interner;
  interner.intern("known");
  const AddressInterner& view = interner;
  ASSERT_TRUE(view.lookup("known").has_value());
  EXPECT_EQ(*view.lookup("known"), 0u);
  EXPECT_FALSE(view.lookup("unknown").has_value());
  // lookup() must not intern as a side effect.
  EXPECT_EQ(view.size(), 1u);
}

TEST(AddressInterner, NameThrowsForUnassignedId) {
  AddressInterner interner;
  interner.intern("only");
  EXPECT_THROW(interner.name(1), std::out_of_range);
  EXPECT_THROW(interner.name(42), std::out_of_range);
}

TEST(LinkKey, PacksSrcHighDstLow) {
  const std::uint64_t key = pack_link(3, 7);
  EXPECT_EQ(key, (std::uint64_t{3} << 32) | 7);
  EXPECT_EQ(link_src(key), 3u);
  EXPECT_EQ(link_dst(key), 7u);
}

TEST(LinkKey, DirectionsAreDistinctAndExtremesSurvive) {
  EXPECT_NE(pack_link(1, 2), pack_link(2, 1));
  const AddressId max = 0xffffffffu;
  EXPECT_EQ(link_src(pack_link(max, 0)), max);
  EXPECT_EQ(link_dst(pack_link(0, max)), max);
}

TEST(SimulatorInterner, AssignsIdsAsAddressesAppear) {
  Simulator sim;
  struct Silent : Node {
    using Node::Node;
    void on_packet(const Packet&, Simulator&) override {}
  };
  Silent a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  ASSERT_TRUE(sim.interner().lookup("a").has_value());
  ASSERT_TRUE(sim.interner().lookup("b").has_value());
  EXPECT_EQ(sim.interner().name(*sim.interner().lookup("a")), "a");
  EXPECT_FALSE(sim.interner().lookup("never-seen").has_value());
}

TEST(SimulatorInterner, RejectsDuplicateAddresses) {
  Simulator sim;
  struct Silent : Node {
    using Node::Node;
    void on_packet(const Packet&, Simulator&) override {}
  };
  Silent a1("dup"), a2("dup");
  sim.add_node(a1);
  EXPECT_THROW(sim.add_node(a2), std::invalid_argument);
}

}  // namespace
}  // namespace dcpl::net
