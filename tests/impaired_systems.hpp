// Shared by test_faults.cpp and test_soak.cpp: one self-contained runner per
// paper system (bench_tables T1-T8) that executes the system's workload —
// optionally under a FaultPlan — and reports the derived knowledge tuples,
// the decoupling verdict, the fault counters, and the final virtual time.
// Request/response systems use their reliable entry points; one-way or
// unwired systems use blind repetition.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.hpp"
#include "net/faults.hpp"
#include "net/sim.hpp"
#include "systems/ecash/ecash.hpp"
#include "systems/mixnet/mixnet.hpp"
#include "systems/mpr/mpr.hpp"
#include "systems/odoh/odoh.hpp"
#include "systems/pgpp/pgpp.hpp"
#include "systems/ppm/ppm.hpp"
#include "systems/privacypass/privacypass.hpp"
#include "systems/retry.hpp"

namespace dcpl::testutil {

struct SystemRun {
  std::map<std::string, std::string> tuples;
  bool decoupled = false;
  std::uint64_t injected = 0;   // faults the plan actually fired
  net::Time end_time = 0;       // virtual time when the workload drained
};

/// The acceptance impairment: 5% loss, 5% duplication, 20% jitter ≤ 5 ms.
inline net::FaultPlan impaired_plan(std::uint64_t seed) {
  net::FaultPlan plan(seed);
  plan.impair(net::Impairment{0.05, 0.05, 0.2, 5'000});
  return plan;
}

inline std::uint64_t injected_count(const net::Simulator& sim) {
  const net::FaultStats& s = sim.fault_stats();
  return s.total_dropped() + s.duplicated + s.jittered + s.breaches_fired;
}

inline std::map<std::string, std::string> tuples_for(
    const core::DecouplingAnalysis& a, const std::vector<std::string>& ps) {
  std::map<std::string, std::string> out;
  for (const auto& p : ps) out[p] = a.tuple_for(p).to_string();
  return out;
}

inline SystemRun run_ecash(const net::FaultPlan* plan) {
  using namespace systems::ecash;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("bank.example", core::benign_identity("addr:bank.example"));
  book.set("seller.example", core::benign_identity("addr:seller.example"));
  book.set("10.0.0.1", core::sensitive_identity("account:alice", "network"));

  Bank bank("bank.example", 1024, log, book, 1);
  bank.open_account("alice", 12);
  Seller seller("seller.example", "bank.example", bank.public_key(), log,
                book);
  Buyer buyer("10.0.0.1", "anon:alpha", "alice", "bank.example",
              bank.public_key(), log, 7);
  sim.add_node(bank);
  sim.add_node(seller);
  sim.add_node(buyer);
  if (plan) sim.set_fault_plan(*plan);

  // No reliable wiring: blind repetition rides out loss.
  for (int i = 0; i < 8; ++i) buyer.withdraw(sim);
  sim.run();
  buyer.spend("seller.example", "paperback", sim);
  buyer.spend("seller.example", "coffee", sim);
  buyer.spend("seller.example", "stamps", sim);
  sim.run();

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(a, {"10.0.0.1", kSigner, kVerifier, "seller.example"});
  r.decoupled = a.is_decoupled("10.0.0.1");
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_mixnet(const net::FaultPlan* plan) {
  using namespace systems::mixnet;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::vector<std::unique_ptr<MixNode>> mixes;
  std::vector<HopInfo> chain;
  for (int i = 0; i < 3; ++i) {
    std::string addr = "mix" + std::to_string(i + 1);
    book.set(addr, core::benign_identity("addr:" + addr));
    mixes.push_back(
        std::make_unique<MixNode>(addr, 2, 100'000, log, book, 10 + i));
    sim.add_node(*mixes.back());
    chain.push_back(HopInfo{addr, mixes.back()->key().public_key});
  }
  book.set("rcv1", core::benign_identity("addr:rcv1"));
  Receiver receiver("rcv1", log, book, 50);
  sim.add_node(receiver);

  std::vector<std::unique_ptr<Sender>> senders;
  std::vector<core::Party> users;
  for (int i = 0; i < 4; ++i) {
    std::string addr = "10.1.0." + std::to_string(i + 1);
    book.set(addr, core::sensitive_identity("user:s" + std::to_string(i),
                                            "network"));
    senders.push_back(std::make_unique<Sender>(
        addr, "user:s" + std::to_string(i), log, 100 + i));
    sim.add_node(*senders.back());
    users.push_back(addr);
  }
  if (plan) sim.set_fault_plan(*plan);

  HopInfo rcv{"rcv1", receiver.key().public_key};
  systems::RetryPolicy policy;
  for (auto& s : senders) {
    s->send_message_reliable("dissent", chain, rcv, sim, policy);
  }
  sim.run();

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(a, {"10.1.0.1", "mix1", "mix2", "mix3", "rcv1"});
  r.decoupled = a.is_decoupled(users);
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_privacypass(const net::FaultPlan* plan) {
  using namespace systems::privacypass;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("issuer.example", core::benign_identity("addr:issuer.example"));
  book.set("origin.example", core::benign_identity("addr:origin.example"));
  book.set("tor-exit.example", core::benign_identity("addr:tor-exit.example"));

  Issuer issuer("issuer.example", 1024, log, book, 1);
  issuer.register_account("alice");
  Origin origin("origin.example", "origin.example", issuer.public_key(), log,
                book);
  Client client("tor-exit.example", "alice", "issuer.example",
                issuer.public_key(), log, 7);
  sim.add_node(issuer);
  sim.add_node(origin);
  sim.add_node(client);
  if (plan) sim.set_fault_plan(*plan);

  systems::RetryPolicy policy;
  for (int i = 0; i < 3; ++i) {
    client.request_token_reliable(sim, policy, [](Result<Token>) {});
  }
  sim.run();
  client.access_reliable("origin.example", "/protected-a", sim, policy,
                         [](Result<bool>) {});
  client.access_reliable("origin.example", "/protected-b", sim, policy,
                         [](Result<bool>) {});
  sim.run();

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(
      a, {"tor-exit.example", "issuer.example", "origin.example"});
  r.decoupled = a.is_decoupled("tor-exit.example");
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_odoh(const net::FaultPlan* plan) {
  using namespace systems::odoh;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  for (const char* x : {"198.41.0.4", "192.5.6.30", "192.0.2.53",
                        "target.example", "proxy.example"}) {
    book.set(x, core::benign_identity(std::string("addr:") + x));
  }
  book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

  dns::Zone root_zone("");
  root_zone.delegate("com", "a.gtld-servers.net", "192.5.6.30");
  dns::Zone com_zone("com");
  com_zone.delegate("example.com", "ns1.example.com", "192.0.2.53");
  dns::Zone example_zone("example.com");
  example_zone.add_a("www.example.com", "203.0.113.10");
  example_zone.add_a("mail.example.com", "203.0.113.25");

  AuthorityNode root("198.41.0.4", std::move(root_zone), log, book);
  AuthorityNode tld("192.5.6.30", std::move(com_zone), log, book);
  AuthorityNode auth("192.0.2.53", std::move(example_zone), log, book);
  ResolverNode target("target.example", "198.41.0.4", log, book, 2);
  OdohProxy proxy("proxy.example", "target.example", log, book);
  StubClient client("10.0.0.1", "user:alice", log, 7);
  for (net::Node* n : std::vector<net::Node*>{&root, &tld, &auth, &target,
                                              &proxy, &client}) {
    sim.add_node(*n);
  }
  if (plan) sim.set_fault_plan(*plan);

  systems::RetryPolicy policy;
  client.query_reliable("www.example.com", Mode::kOdoh, "",
                        target.key().public_key, "proxy.example", sim,
                        policy, [](Result<dns::Message>) {});
  client.query_reliable("mail.example.com", Mode::kOdoh, "",
                        target.key().public_key, "proxy.example", sim,
                        policy, [](Result<dns::Message>) {});
  sim.run();

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(a, {"10.0.0.1", "proxy.example", "target.example"});
  r.decoupled = a.is_decoupled("10.0.0.1");
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_pgpp(const net::FaultPlan* plan) {
  using namespace systems::pgpp;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("pgpp-gw.example", core::benign_identity("addr:pgpp-gw.example"));
  book.set("ngc.example", core::benign_identity("addr:ngc.example"));
  book.set("ue0", core::sensitive_identity("subscriber:alice", "human"));

  Gateway gw("pgpp-gw.example", 1024, log, book, 1);
  CellularCore ngc("ngc.example", CoreMode::kPgpp, gw.public_key(), log, book);
  MobileUser user("ue0", "alice", "001010000000001", "pgpp-gw.example",
                  "ngc.example", gw.public_key(), log, 7);
  sim.add_node(gw);
  sim.add_node(ngc);
  sim.add_node(user);
  if (plan) sim.set_fault_plan(*plan);

  // Two token purchases so a lost response cannot zero the wallet.
  user.buy_tokens(4, sim);
  user.buy_tokens(4, sim);
  sim.run();
  const std::uint64_t epochs =
      std::min<std::uint64_t>(4, user.tokens_available());
  for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
    user.attach(static_cast<std::uint16_t>(10 + epoch), epoch,
                CoreMode::kPgpp, sim);
  }
  sim.run();

  const std::vector<std::pair<std::string, std::string>> facets = {
      {"human", "H"}, {"network", "N"}};
  core::DecouplingAnalysis a(log);
  SystemRun r;
  for (const char* p : {"ue0", "pgpp-gw.example", "ngc.example"}) {
    r.tuples[p] = a.faceted_tuple(p, facets);
  }
  r.decoupled = a.is_decoupled("ue0");
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_mpr(const net::FaultPlan* plan) {
  using namespace systems::mpr;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("origin.example", core::benign_identity("addr:origin.example"));
  book.set("relay1.example", core::benign_identity("addr:relay1.example"));
  book.set("relay2.example", core::benign_identity("addr:relay2.example"));
  book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

  SecureOrigin origin(
      "origin.example",
      [](const http::Request& req) {
        http::Response resp;
        resp.body = to_bytes("ok " + req.path);
        return resp;
      },
      log, book, 1);
  OnionRelay relay1("relay1.example", log, book, 10);
  OnionRelay relay2("relay2.example", log, book, 11);
  Client client("10.0.0.1", "user:alice", log, 42);
  sim.add_node(origin);
  sim.add_node(relay1);
  sim.add_node(relay2);
  sim.add_node(client);
  if (plan) sim.set_fault_plan(*plan);

  std::vector<RelayInfo> chain = {
      {"relay1.example", relay1.key().public_key},
      {"relay2.example", relay2.key().public_key}};
  // No reliable wiring: independent circuits ride out loss.
  for (int i = 0; i < 4; ++i) {
    http::Request req;
    req.authority = "origin.example";
    req.path = "/page-" + std::to_string(i);
    client.fetch_via_relays(req, chain, "origin.example",
                            origin.key().public_key, sim, nullptr);
  }
  sim.run();

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(a, {"10.0.0.1", "relay1.example", "relay2.example",
                            "origin.example"});
  r.decoupled = a.is_decoupled("10.0.0.1");
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_ppm(const net::FaultPlan* plan) {
  using namespace systems::ppm;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::vector<net::Address> agg_addrs = {"agg0.example", "agg1.example"};
  std::vector<std::unique_ptr<Aggregator>> aggs;
  for (std::size_t i = 0; i < 2; ++i) {
    book.set(agg_addrs[i], core::benign_identity("addr:" + agg_addrs[i]));
    aggs.push_back(std::make_unique<Aggregator>(
        agg_addrs[i], i, 2, agg_addrs[0], log, book, 10 + i));
    sim.add_node(*aggs.back());
  }
  aggs[0]->set_peers(agg_addrs);
  book.set("collector.example",
           core::benign_identity("addr:collector.example"));
  Collector collector("collector.example", agg_addrs, log, book);
  sim.add_node(collector);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<core::Party> users;
  std::vector<AggregatorInfo> infos = {
      {agg_addrs[0], aggs[0]->key().public_key},
      {agg_addrs[1], aggs[1]->key().public_key}};
  for (int i = 0; i < 8; ++i) {
    std::string addr = "10.0.3." + std::to_string(i + 1);
    book.set(addr, core::sensitive_identity("user:c" + std::to_string(i),
                                            "network"));
    clients.push_back(std::make_unique<Client>(
        addr, "user:c" + std::to_string(i), i + 1, log, 100 + i));
    sim.add_node(*clients.back());
    users.push_back(addr);
  }
  if (plan) sim.set_fault_plan(*plan);

  systems::RetryPolicy policy;
  for (int i = 0; i < 8; ++i) {
    clients[i]->submit_bool_reliable(i % 3 == 0, infos, sim, policy);
  }
  sim.run();
  // collect() is unreliable fan-out; two rounds ride out response loss.
  for (int round = 0; round < 2; ++round) {
    collector.collect(sim, [](std::size_t, std::uint64_t) {});
    sim.run();
  }

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(a, {"10.0.3.1", "agg0.example", "collector.example"});
  r.decoupled = a.is_decoupled(users);
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

inline SystemRun run_vpn(const net::FaultPlan* plan) {
  using namespace systems::mpr;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("origin.example", core::benign_identity("addr:origin.example"));
  book.set("vpn.example", core::benign_identity("addr:vpn.example"));
  book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

  SecureOrigin origin(
      "origin.example",
      [](const http::Request& req) {
        http::Response resp;
        resp.body = to_bytes("ok " + req.path);
        return resp;
      },
      log, book, 1);
  VpnServer vpn("vpn.example", log, book, 99);
  Client client("10.0.0.1", "user:alice", log, 42);
  sim.add_node(origin);
  sim.add_node(vpn);
  sim.add_node(client);
  if (plan) sim.set_fault_plan(*plan);

  RelayInfo tunnel{"vpn.example", vpn.key().public_key};
  for (int i = 0; i < 3; ++i) {
    http::Request req;
    req.authority = "origin.example";
    req.path = "/page-" + std::to_string(i);
    client.fetch_via_vpn(req, tunnel, "origin.example",
                         origin.key().public_key, sim, nullptr);
  }
  sim.run();

  core::DecouplingAnalysis a(log);
  SystemRun r;
  r.tuples = tuples_for(a, {"10.0.0.1", "vpn.example", "origin.example"});
  r.decoupled = a.is_decoupled("10.0.0.1");
  r.injected = injected_count(sim);
  r.end_time = sim.now();
  return r;
}

}  // namespace dcpl::testutil
