// Soak test: a mixed city of systems sharing one simulator — OHTTP
// browsing, mix-net messaging, Privacy Pass redemptions, and PPM telemetry
// running concurrently. Checks global correctness, the combined decoupling
// verdict, and bit-exact determinism across runs.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "crypto/sha256.hpp"
#include "impaired_systems.hpp"
#include "systems/mixnet/mixnet.hpp"
#include "systems/ohttp/ohttp.hpp"
#include "systems/ppm/ppm.hpp"
#include "systems/privacypass/privacypass.hpp"

namespace dcpl::systems {
namespace {

struct City {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  // OHTTP estate.
  std::unique_ptr<ohttp::OriginServer> web_origin;
  std::unique_ptr<ohttp::Gateway> gateway;
  std::unique_ptr<ohttp::Relay> relay;
  std::vector<std::unique_ptr<ohttp::Client>> browsers;

  // Mix-net estate.
  std::vector<std::unique_ptr<mixnet::MixNode>> mixes;
  std::unique_ptr<mixnet::Receiver> dropbox;
  std::vector<std::unique_ptr<mixnet::Sender>> whistleblowers;

  // Privacy Pass estate.
  std::unique_ptr<privacypass::Issuer> issuer;
  std::unique_ptr<privacypass::Origin> gated_origin;
  std::vector<std::unique_ptr<privacypass::Client>> pass_clients;

  // PPM estate.
  std::vector<std::unique_ptr<ppm::Aggregator>> aggs;
  std::unique_ptr<ppm::Collector> collector;
  std::vector<std::unique_ptr<ppm::Client>> reporters;

  std::vector<core::Party> users;
  std::vector<net::Address> node_addrs;  // every registered node, in order

  void add(net::Node& n) {
    sim.add_node(n);
    node_addrs.push_back(n.address());
  }

  City() {
    auto benign = [&](const std::string& a) {
      book.set(a, core::benign_identity("addr:" + a));
    };
    auto user_addr = [&](const std::string& a, const std::string& label) {
      book.set(a, core::sensitive_identity(label, "network"));
      users.push_back(a);
    };

    // --- OHTTP ---
    benign("web.example");
    benign("gw.example");
    benign("relay.example");
    web_origin = std::make_unique<ohttp::OriginServer>(
        "web.example",
        [](const http::Request& req) {
          http::Response resp;
          resp.body = to_bytes("page " + req.path);
          return resp;
        },
        log, book);
    gateway = std::make_unique<ohttp::Gateway>("gw.example", log, book, 1);
    gateway->add_origin("web.example", "web.example");
    relay = std::make_unique<ohttp::Relay>("relay.example", "gw.example", log,
                                           book);
    add(*web_origin);
    add(*gateway);
    add(*relay);
    for (int i = 0; i < 8; ++i) {
      std::string addr = "10.0.0." + std::to_string(i + 1);
      user_addr(addr, "user:browser" + std::to_string(i));
      browsers.push_back(std::make_unique<ohttp::Client>(
          addr, "user:browser" + std::to_string(i), "relay.example",
          gateway->key().public_key, log, 100 + i));
      add(*browsers.back());
    }

    // --- Mix-net ---
    for (int i = 0; i < 3; ++i) {
      std::string addr = "mix" + std::to_string(i + 1);
      benign(addr);
      mixes.push_back(std::make_unique<mixnet::MixNode>(addr, 4, 500'000, log,
                                                        book, 20 + i));
      add(*mixes.back());
    }
    benign("dropbox");
    dropbox = std::make_unique<mixnet::Receiver>("dropbox", log, book, 30);
    add(*dropbox);
    for (int i = 0; i < 8; ++i) {
      std::string addr = "10.1.0." + std::to_string(i + 1);
      user_addr(addr, "user:wb" + std::to_string(i));
      whistleblowers.push_back(std::make_unique<mixnet::Sender>(
          addr, "user:wb" + std::to_string(i), log, 200 + i));
      add(*whistleblowers.back());
    }

    // --- Privacy Pass ---
    benign("issuer.example");
    benign("gated.example");
    issuer = std::make_unique<privacypass::Issuer>("issuer.example", 1024,
                                                   log, book, 2);
    gated_origin = std::make_unique<privacypass::Origin>(
        "gated.example", "gated.example", issuer->public_key(), log, book);
    add(*issuer);
    add(*gated_origin);
    for (int i = 0; i < 4; ++i) {
      std::string account = "acct" + std::to_string(i);
      issuer->register_account(account);
      std::string addr = "exit" + std::to_string(i);
      benign(addr);       // reached over an anonymizing path
      users.push_back(addr);  // still a user device for the §2.4 verdict
      pass_clients.push_back(std::make_unique<privacypass::Client>(
          addr, account, "issuer.example", issuer->public_key(), log,
          300 + i));
      add(*pass_clients.back());
    }

    // --- PPM ---
    std::vector<net::Address> agg_addrs = {"aggA", "aggB"};
    for (std::size_t i = 0; i < 2; ++i) {
      benign(agg_addrs[i]);
      aggs.push_back(std::make_unique<ppm::Aggregator>(
          agg_addrs[i], i, 2, agg_addrs[0], log, book, 40 + i));
      add(*aggs.back());
    }
    aggs[0]->set_peers(agg_addrs);
    benign("collector");
    collector = std::make_unique<ppm::Collector>("collector", agg_addrs, log,
                                                 book);
    add(*collector);
    for (int i = 0; i < 10; ++i) {
      std::string addr = "10.2.0." + std::to_string(i + 1);
      user_addr(addr, "user:dev" + std::to_string(i));
      reporters.push_back(std::make_unique<ppm::Client>(
          addr, "user:dev" + std::to_string(i), i + 1, log, 400 + i));
      add(*reporters.back());
    }
  }

  /// Runs the whole city's mixed workload; returns a trace digest.
  std::string run_workload() {
    std::vector<mixnet::HopInfo> chain;
    for (auto& m : mixes) {
      chain.push_back({m->address(), m->key().public_key});
    }
    mixnet::HopInfo drop{"dropbox", dropbox->key().public_key};
    std::vector<ppm::AggregatorInfo> infos;
    for (auto& a : aggs) {
      infos.push_back({a->address(), a->key().public_key});
    }

    for (int round = 0; round < 3; ++round) {
      for (std::size_t i = 0; i < browsers.size(); ++i) {
        http::Request req;
        req.authority = "web.example";
        req.path = "/r" + std::to_string(round) + "/u" + std::to_string(i);
        browsers[i]->fetch(req, sim, nullptr);
      }
      for (std::size_t i = 0; i < whistleblowers.size(); ++i) {
        whistleblowers[i]->send_message(
            "leak-" + std::to_string(round) + "-" + std::to_string(i), chain,
            drop, sim);
      }
      for (auto& c : pass_clients) c->request_token(sim);
      for (std::size_t i = 0; i < reporters.size(); ++i) {
        reporters[i]->submit_bool((i + round) % 3 == 0, infos, sim);
      }
      sim.run();
      for (auto& c : pass_clients) c->access("gated.example", "/door", sim);
      sim.run();
    }

    // Digest the full trace for determinism checks.
    Bytes blob;
    for (const auto& e : sim.trace()) {
      append(blob, be_encode(e.time, 8));
      append(blob, to_bytes(e.src + ">" + e.dst + ";"));
      append(blob, be_encode(e.size, 4));
    }
    return to_hex(crypto::Sha256::hash(blob));
  }
};

TEST(Soak, MixedWorkloadCorrectness) {
  City city;
  city.run_workload();

  EXPECT_EQ(city.web_origin->requests_served(), 24u);  // 8 browsers x 3
  EXPECT_EQ(city.dropbox->deliveries().size(), 24u);   // 8 senders x 3
  EXPECT_EQ(city.gated_origin->served(), 12u);         // 4 clients x 3
  for (auto& a : city.aggs) EXPECT_EQ(a->accepted(), 30u);

  std::uint64_t total = 0;
  city.collector->collect(city.sim,
                          [&](std::size_t, std::uint64_t t) { total = t; });
  city.sim.run();
  // Rounds 0..2, reporters 0..9: true when (i+round)%3==0 -> 10 per round.
  EXPECT_EQ(total, 10u);
}

TEST(Soak, WholeCityRemainsDecoupled) {
  City city;
  city.run_workload();
  core::DecouplingAnalysis a(city.log);
  EXPECT_TRUE(a.is_decoupled(city.users));
  // Spot-check cross-system coalitions gain nothing.
  EXPECT_FALSE(a.coalition_recouples({"relay.example", "mix1", "aggA"}));
  EXPECT_FALSE(a.coalition_recouples({"issuer.example", "gw.example"}));
}

TEST(Soak, DeterministicAcrossRuns) {
  City a, b;
  EXPECT_EQ(a.run_workload(), b.run_workload());
}

TEST(Soak, TraceVolumeIsSubstantial) {
  City city;
  city.run_workload();
  // The mixed workload should exercise hundreds of packets.
  EXPECT_GT(city.sim.packets_delivered(), 300u);
  EXPECT_GT(city.sim.bytes_delivered(), 25'000u);
}

// The whole mixed city on the sharded engine. The city's systems share one
// core::ObservationLog, which is not thread-safe, so every node is pinned to
// shard 0 — the run still exercises the full threaded machinery (worker
// spawn, window barriers, deferred trace replay, repeated run() calls with
// sends in between) and must reproduce the serial trace digest byte for
// byte. Spread multi-shard execution is covered by test_shard, whose flow
// capture uses the staged FlowLedger lanes.
TEST(Soak, ShardedCityPinnedToOneShardMatchesSerialDigest) {
  City serial;
  const std::string want = serial.run_workload();

  City sharded;
  for (const net::Address& a : sharded.node_addrs) {
    sharded.sim.set_shard_affinity(a, 0);
  }
  sharded.sim.set_shards(4);
  EXPECT_EQ(sharded.run_workload(), want);

  EXPECT_EQ(sharded.sim.packets_delivered(), serial.sim.packets_delivered());
  EXPECT_EQ(sharded.sim.bytes_delivered(), serial.sim.bytes_delivered());
  EXPECT_EQ(sharded.web_origin->requests_served(),
            serial.web_origin->requests_served());
  EXPECT_EQ(sharded.dropbox->deliveries().size(),
            serial.dropbox->deliveries().size());
  EXPECT_EQ(sharded.gated_origin->served(), serial.gated_origin->served());

  const net::Simulator::ShardRunStats& stats = sharded.sim.shard_stats();
  EXPECT_EQ(stats.shards, 4u);
  ASSERT_EQ(stats.cross_sends.size(), 4u);
  for (std::uint64_t c : stats.cross_sends) {
    EXPECT_EQ(c, 0u);  // everything pinned: no boundary crossings
  }
  // The decoupling verdict survives the sharded execution unchanged.
  core::DecouplingAnalysis a(sharded.log);
  EXPECT_TRUE(a.is_decoupled(sharded.users));
}

// 1000+ randomized-seed runs sweeping loss ∈ {0, 0.05, 0.2} across all
// eight paper systems (bench_tables T1-T8). Every run must drain at bounded
// virtual time, and impairment must never *create* a coupling: systems that
// are decoupled fault-free stay decoupled under any seeded plan (faults can
// only remove or duplicate observations). The VPN control stays coupled in
// every fault-free run. Seeds come from a fixed-seed generator, so the whole
// sweep is reproducible.
TEST(Soak, ThousandRunRandomizedFaultSweep) {
  using testutil::SystemRun;
  struct Entry {
    const char* name;
    SystemRun (*run)(const net::FaultPlan*);
    bool decoupled_when_clean;
  };
  const Entry entries[] = {
      {"ecash", testutil::run_ecash, true},
      {"mixnet", testutil::run_mixnet, true},
      {"privacypass", testutil::run_privacypass, true},
      {"odoh", testutil::run_odoh, true},
      {"pgpp", testutil::run_pgpp, true},
      {"mpr", testutil::run_mpr, true},
      {"ppm", testutil::run_ppm, true},
      {"vpn", testutil::run_vpn, false},
  };
  const double losses[] = {0.0, 0.05, 0.2};

  XoshiroRng seed_gen(2026);
  int runs = 0;
  std::uint64_t injected_total = 0;
  for (int iter = 0; iter < 42; ++iter) {
    for (double loss : losses) {
      for (const Entry& e : entries) {
        const std::uint64_t seed = seed_gen.u64();
        SystemRun r;
        if (loss == 0.0) {
          r = e.run(nullptr);
        } else {
          net::FaultPlan plan(seed);
          plan.impair(net::Impairment{loss, 0.05, 0.2, 5'000});
          r = e.run(&plan);
          injected_total += r.injected;
        }
        ++runs;
        // Bounded virtual time: bounded retries mean every workload drains
        // within a minute of simulated time, impaired or not.
        EXPECT_LT(r.end_time, 60'000'000u)
            << e.name << " seed " << seed << " loss " << loss;
        if (e.decoupled_when_clean) {
          EXPECT_TRUE(r.decoupled)
              << e.name << " seed " << seed << " loss " << loss;
        } else if (loss == 0.0) {
          // The coupled control: no fault-free run may look decoupled.
          EXPECT_FALSE(r.decoupled) << e.name << " seed " << seed;
        }
      }
    }
  }
  EXPECT_EQ(runs, 1008);
  EXPECT_GT(injected_total, 0u);
}

}  // namespace
}  // namespace dcpl::systems
