// ECH cautionary tale (§3.3): hides the SNI from the network, not from the
// terminating server.
#include "systems/ech/ech.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::ech {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<TlsServer> server;
  std::unique_ptr<NetworkTap> tap;
  std::unique_ptr<TlsClient> client;

  Fixture() {
    book.set("server.example", core::benign_identity("addr:server.example"));
    book.set("isp-router", core::benign_identity("addr:isp-router"));
    book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

    server = std::make_unique<TlsServer>("server.example",
                                         "public.cdn.example", log, book, 1);
    tap = std::make_unique<NetworkTap>("isp-router", "server.example", log,
                                       book);
    client = std::make_unique<TlsClient>("10.0.0.1", "user:alice", log, 7);
    sim.add_node(*server);
    sim.add_node(*tap);
    sim.add_node(*client);
  }
};

TEST(Ech, PlainHandshakeCompletes) {
  Fixture f;
  std::string negotiated;
  f.client->connect("private.example", false, "isp-router", {}, "", f.sim,
                    [&](const std::string& sni) { negotiated = sni; });
  f.sim.run();
  EXPECT_EQ(negotiated, "private.example");
  EXPECT_EQ(f.server->handshakes(), 1u);
  EXPECT_EQ(f.tap->inspected(), 1u);
}

TEST(Ech, EchHandshakeCompletes) {
  Fixture f;
  std::string negotiated;
  f.client->connect("private.example", true, "isp-router",
                    f.server->ech_key().public_key, f.server->public_name(),
                    f.sim, [&](const std::string& sni) { negotiated = sni; });
  f.sim.run();
  EXPECT_EQ(negotiated, "private.example");
  EXPECT_EQ(f.client->completed(), 1u);
}

TEST(Ech, PlainTlsLeaksSniToNetwork) {
  Fixture f;
  f.client->connect("private.example", false, "isp-router", {}, "", f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  // The network sees who AND what: a full coupling point.
  EXPECT_EQ(a.tuple_for("isp-router").to_string(), "(▲, ●)");
  EXPECT_TRUE(a.breach("isp-router").coupled());
}

TEST(Ech, EchHidesSniFromNetworkOnly) {
  Fixture f;
  f.client->connect("private.example", true, "isp-router",
                    f.server->ech_key().public_key, f.server->public_name(),
                    f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  // Network: identity yes, but only the public cover name (benign).
  EXPECT_EQ(a.tuple_for("isp-router").to_string(), "(▲, ⊙)");
  EXPECT_FALSE(a.breach("isp-router").coupled());
  // The server still couples: ECH does not decouple the endpoint (§3.3).
  EXPECT_EQ(a.tuple_for("server.example").to_string(), "(▲, ●)");
  EXPECT_TRUE(a.breach("server.example").coupled());
  EXPECT_FALSE(a.is_decoupled("10.0.0.1"));
}

TEST(Ech, NetworkNeverSeesRealSniWithEch) {
  Fixture f;
  f.client->connect("private.example", true, "isp-router",
                    f.server->ech_key().public_key, f.server->public_name(),
                    f.sim);
  f.sim.run();
  for (const auto& obs : f.log.for_party("isp-router")) {
    EXPECT_EQ(obs.atom.label.find("private.example"), std::string::npos);
  }
}

TEST(Ech, CoverNameVisibleToNetwork) {
  Fixture f;
  f.client->connect("private.example", true, "isp-router",
                    f.server->ech_key().public_key, f.server->public_name(),
                    f.sim);
  f.sim.run();
  bool saw_cover = false;
  for (const auto& obs : f.log.for_party("isp-router")) {
    if (obs.atom.label == "sni:public.cdn.example") saw_cover = true;
  }
  EXPECT_TRUE(saw_cover);
}

TEST(Ech, WrongEchKeyFallsBackToCoverName) {
  // Stale/wrong ECH config: per the GREASE-compatible fallback, the server
  // completes the handshake for the OUTER name; the real SNI stays hidden,
  // and the client (expecting an encrypted reply) aborts.
  Fixture f;
  crypto::ChaChaRng rng(99);
  auto other = hpke::KeyPair::generate(rng);
  f.client->connect("private.example", true, "isp-router", other.public_key,
                    f.server->public_name(), f.sim);
  f.sim.run();
  EXPECT_EQ(f.server->handshakes(), 1u);
  EXPECT_EQ(f.client->completed(), 0u);
  // The real SNI never reached anyone.
  for (const auto& party : {"isp-router", "server.example"}) {
    for (const auto& obs : f.log.for_party(party)) {
      EXPECT_EQ(obs.atom.label.find("private.example"), std::string::npos);
    }
  }
}

TEST(Ech, GreaseCompletesAndLooksLikeEchOnTheWire) {
  Fixture f;
  std::string negotiated;
  f.client->connect_grease("plain-site.example", "isp-router", f.sim,
                           [&](const std::string& sni) { negotiated = sni; });
  f.sim.run();
  EXPECT_EQ(negotiated, "plain-site.example");
  EXPECT_EQ(f.server->handshakes(), 1u);
  EXPECT_EQ(f.client->completed(), 1u);
}

TEST(Ech, GreaseMakesEchUsersIndistinguishableByFlag) {
  // The observer's only protocol-level signal is the has_ech flag; with
  // GREASE every ClientHello carries it, so the flag stops partitioning
  // users into "hiding something" vs not (the anti-ossification point).
  Fixture f;
  std::vector<bool> flags;
  f.sim.add_wiretap([&](const net::TraceEntry& e) {
    if (e.dst == "isp-router") flags.push_back(true);  // presence only
  });
  f.client->connect("private.example", true, "isp-router",
                    f.server->ech_key().public_key, f.server->public_name(),
                    f.sim);
  f.client->connect_grease("plain-site.example", "isp-router", f.sim);
  f.sim.run();
  // Both flows parsed as ECH at the tap: the benign-data sni atoms exist
  // for both (outer names), sensitive sni for neither... except GREASE
  // exposes its real name as the outer SNI, by design.
  std::size_t ech_flagged = 0;
  for (const auto& obs : f.log.for_party("isp-router")) {
    if (obs.atom.label.starts_with("sni:")) ++ech_flagged;
  }
  EXPECT_EQ(ech_flagged, 2u);
}

TEST(Ech, GarbageHelloDropped) {
  Fixture f;
  f.sim.send(net::Packet{"10.0.0.1", "server.example", Bytes(5, 0xff),
                         f.sim.new_context(), "tls"});
  f.sim.run();
  EXPECT_EQ(f.server->handshakes(), 0u);
}

}  // namespace
}  // namespace dcpl::systems::ech
