#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "common/io.hpp"
#include "common/rng.hpp"

namespace dcpl {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(b), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), b);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), b);
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

// RFC 4648 §10 test vectors.
TEST(Bytes, Base64Rfc4648Vectors) {
  EXPECT_EQ(to_base64(to_bytes("")), "");
  EXPECT_EQ(to_base64(to_bytes("f")), "Zg==");
  EXPECT_EQ(to_base64(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(to_base64(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(to_base64(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(to_base64(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(to_base64(to_bytes("foobar")), "Zm9vYmFy");

  EXPECT_EQ(to_string(from_base64("Zm9vYmFy")), "foobar");
  EXPECT_EQ(to_string(from_base64("Zm9vYg==")), "foob");
}

TEST(Bytes, Base64RoundTripRandom) {
  XoshiroRng rng(42);
  for (std::size_t len = 0; len < 64; ++len) {
    Bytes b = rng.bytes(len);
    EXPECT_EQ(from_base64(to_base64(b)), b) << "len=" << len;
  }
}

TEST(Bytes, Base64RejectsBadInput) {
  EXPECT_THROW(from_base64("Zg="), std::invalid_argument);
  EXPECT_THROW(from_base64("Z!=="), std::invalid_argument);
  EXPECT_THROW(from_base64("=AAA"), std::invalid_argument);
}

TEST(Bytes, Concat) {
  Bytes a = {1, 2}, b = {}, c = {3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, XorBytes) {
  Bytes a = {0xff, 0x00, 0x55};
  Bytes b = {0x0f, 0xf0, 0x55};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0xf0, 0x00}));
  EXPECT_THROW(xor_bytes(a, Bytes{1}), std::invalid_argument);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, BigEndianEncode) {
  EXPECT_EQ(be_encode(0x0102, 2), (Bytes{0x01, 0x02}));
  EXPECT_EQ(be_encode(0xff, 4), (Bytes{0, 0, 0, 0xff}));
  EXPECT_EQ(be_decode(Bytes{0x01, 0x02, 0x03}), 0x010203u);
  EXPECT_THROW(be_encode(1, 9), std::invalid_argument);
}

TEST(ByteWriter, FieldsAndVectors) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x0102);
  w.u32(0xdeadbeef);
  w.vec(Bytes{9, 9}, 2);
  Bytes expected = {0xab, 0x01, 0x02, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x02, 9, 9};
  EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteReader, ReadsBackWriterOutput) {
  ByteWriter w;
  w.u8(7);
  w.u16(0x1234);
  w.u64(0x1122334455667788ULL);
  w.vec(to_bytes("hello"), 1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(to_string(r.vec(1)), "hello");
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, ThrowsOnTruncation) {
  Bytes b = {1, 2};
  ByteReader r(b);
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(ByteReader, VecLengthBeyondBufferThrows) {
  Bytes b = {0x00, 0x10, 1, 2};  // claims 16 bytes, has 2
  ByteReader r(b);
  EXPECT_THROW(r.vec(2), ParseError);
}

TEST(Rng, DeterministicAcrossInstances) {
  XoshiroRng a(123), b(123);
  EXPECT_EQ(a.bytes(32), b.bytes(32));
  XoshiroRng c(124);
  EXPECT_NE(a.bytes(32), c.bytes(32));
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  XoshiroRng rng(7);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UnitInHalfOpenInterval) {
  XoshiroRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}


TEST(Zipf, RanksAreInRangeAndSkewed) {
  XoshiroRng rng(55);
  ZipfSampler zipf(100, 1.0);
  std::vector<std::size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    std::size_t r = zipf.sample(rng);
    ASSERT_LT(r, 100u);
    counts[r]++;
  }
  // Rank 0 should dominate rank 50 heavily under s=1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // And the tail is still reachable.
  std::size_t tail = 0;
  for (int i = 50; i < 100; ++i) tail += counts[i];
  EXPECT_GT(tail, 100u);
}

TEST(Zipf, UniformWhenExponentZero) {
  XoshiroRng rng(56);
  ZipfSampler zipf(10, 0.0);
  std::vector<std::size_t> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.sample(rng)]++;
  for (std::size_t c : counts) {
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dcpl
