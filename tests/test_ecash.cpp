// Chaumian e-cash (§3.1.1): withdraw/spend/deposit, double-spend detection,
// and the paper's T1 table.
#include "systems/ecash/ecash.hpp"

#include <gtest/gtest.h>

#include "common/io.hpp"
#include "core/analysis.hpp"

namespace dcpl::systems::ecash {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<Bank> bank;
  std::unique_ptr<Seller> seller;
  std::unique_ptr<Buyer> buyer;

  Fixture() {
    book.set("bank.example", core::benign_identity("addr:bank.example"));
    book.set("seller.example", core::benign_identity("addr:seller.example"));
    book.set("10.0.0.1", core::sensitive_identity("account:alice", "network"));
    // NOTE: the pseudonym address is deliberately NOT registered — the spend
    // leg models an anonymous channel.

    bank = std::make_unique<Bank>("bank.example", 1024, log, book, 1);
    bank->open_account("alice", 10);
    seller = std::make_unique<Seller>("seller.example", "bank.example",
                                      bank->public_key(), log, book);
    buyer = std::make_unique<Buyer>("10.0.0.1", "anon:alpha", "alice",
                                    "bank.example", bank->public_key(), log, 7);
    sim.add_node(*bank);
    sim.add_node(*seller);
    sim.add_node(*buyer);
  }
};

TEST(Ecash, WithdrawMintsValidCoin) {
  Fixture f;
  f.buyer->withdraw(f.sim);
  f.sim.run();
  ASSERT_EQ(f.buyer->wallet().size(), 1u);
  EXPECT_EQ(f.bank->coins_issued(), 1u);
  EXPECT_EQ(f.bank->balance("alice"), 9u);
  const Coin& coin = f.buyer->wallet()[0];
  EXPECT_TRUE(crypto::blind_verify(f.bank->public_key(), coin.serial,
                                   coin.signature));
}

TEST(Ecash, FullPurchaseFlow) {
  Fixture f;
  f.buyer->withdraw(f.sim);
  f.sim.run();
  ASSERT_TRUE(f.buyer->spend("seller.example", "a-book", f.sim));
  f.sim.run();
  EXPECT_EQ(f.seller->sales_completed(), 1u);
  EXPECT_EQ(f.bank->deposits_accepted(), 1u);
  EXPECT_TRUE(f.buyer->wallet().empty());
}

TEST(Ecash, SpendWithEmptyWalletFails) {
  Fixture f;
  EXPECT_FALSE(f.buyer->spend("seller.example", "x", f.sim));
}

TEST(Ecash, WithdrawBeyondBalanceDenied) {
  Fixture f;
  for (int i = 0; i < 12; ++i) f.buyer->withdraw(f.sim);
  f.sim.run();
  EXPECT_EQ(f.buyer->wallet().size(), 10u);  // balance was 10
  EXPECT_EQ(f.bank->balance("alice"), 0u);
}

TEST(Ecash, UnknownAccountDenied) {
  Fixture f;
  Buyer mallory("10.0.0.9", "anon:m", "mallory", "bank.example",
                f.bank->public_key(), f.log, 9);
  f.sim.add_node(mallory);
  mallory.withdraw(f.sim);
  f.sim.run();
  EXPECT_TRUE(mallory.wallet().empty());
  EXPECT_EQ(f.bank->coins_issued(), 0u);
}

TEST(Ecash, DoubleSpendDetectedAtDeposit) {
  Fixture f;
  f.buyer->withdraw(f.sim);
  f.sim.run();
  Coin coin = f.buyer->wallet()[0];  // copy before spending

  ASSERT_TRUE(f.buyer->spend("seller.example", "item1", f.sim));
  f.sim.run();
  EXPECT_EQ(f.bank->deposits_accepted(), 1u);

  // Replay the same coin directly at the seller (a cheating buyer).
  ByteWriter w;
  w.u8(3);  // kSpend
  w.vec(to_bytes("item2"), 1);
  w.vec(coin.serial, 1);
  w.vec(coin.signature, 2);
  f.sim.send(net::Packet{"anon:alpha", "seller.example", std::move(w).take(),
                         f.sim.new_context(), "ecash"});
  f.sim.run();
  EXPECT_EQ(f.bank->deposits_accepted(), 1u);
  EXPECT_EQ(f.bank->deposits_rejected(), 1u);
  EXPECT_EQ(f.seller->sales_completed(), 1u);
}

TEST(Ecash, ForgedCoinRejectedBySeller) {
  Fixture f;
  ByteWriter w;
  w.u8(3);
  w.vec(to_bytes("stolen-goods"), 1);
  w.vec(Bytes(32, 0x41), 1);
  w.vec(Bytes(128, 0x42), 2);
  f.sim.send(net::Packet{"anon:evil", "seller.example", std::move(w).take(),
                         f.sim.new_context(), "ecash"});
  f.sim.run();
  EXPECT_EQ(f.seller->coins_rejected(), 1u);
  EXPECT_EQ(f.bank->deposits_accepted(), 0u);
}

// Paper table §3.1.1:
//   Buyer (▲,●)  Signer (▲,⊙)  Verifier (△,⊙/●)  Seller (△,●)
TEST(Ecash, TableT1TuplesMatchPaper) {
  Fixture f;
  f.buyer->withdraw(f.sim);
  f.sim.run();
  f.buyer->spend("seller.example", "sensitive-purchase", f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.0.0.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for(kSigner).to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for(kVerifier).to_string(), "(△, ⊙/●)");
  EXPECT_EQ(a.tuple_for("seller.example").to_string(), "(△, ●)");
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
}

TEST(Ecash, BlindnessSignerNeverSeesSerial) {
  Fixture f;
  f.buyer->withdraw(f.sim);
  f.sim.run();
  ASSERT_FALSE(f.buyer->wallet().empty());
  const std::string serial_hex = to_hex(f.buyer->wallet()[0].serial);
  for (const auto& obs : f.log.for_party(kSigner)) {
    EXPECT_EQ(obs.atom.label.find(serial_hex), std::string::npos);
  }
}

TEST(Ecash, UnlinkabilityNoSharedContextBetweenRoles) {
  // Even the bank colluding with itself (signer + verifier logs) cannot
  // couple the account to the purchase: blindness breaks the linkage chain.
  Fixture f;
  f.buyer->withdraw(f.sim);
  f.sim.run();
  f.buyer->spend("seller.example", "item", f.sim);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.coalition_recouples({kSigner, kVerifier}));
  EXPECT_FALSE(a.coalition_recouples({kSigner, kVerifier, "seller.example"}));
}

TEST(Ecash, MultipleBuyersCoinsAllDistinct) {
  Fixture f;
  Buyer bob("10.0.0.2", "anon:beta", "bob", "bank.example",
            f.bank->public_key(), f.log, 8);
  f.bank->open_account("bob", 5);
  f.sim.add_node(bob);
  for (int i = 0; i < 3; ++i) {
    f.buyer->withdraw(f.sim);
    bob.withdraw(f.sim);
  }
  f.sim.run();
  std::set<Bytes> serials;
  for (const auto& c : f.buyer->wallet()) serials.insert(c.serial);
  for (const auto& c : bob.wallet()) serials.insert(c.serial);
  EXPECT_EQ(serials.size(), 6u);
}

}  // namespace
}  // namespace dcpl::systems::ecash
