// Decoupling framework: tuples, verdicts, collusion closure, breach reports.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/address_book.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"

namespace dcpl::core {
namespace {

TEST(Knowledge, SymbolsMatchPaperNotation) {
  EXPECT_STREQ(kind_symbol(AtomKind::kSensitiveIdentity), "▲");
  EXPECT_STREQ(kind_symbol(AtomKind::kBenignIdentity), "△");
  EXPECT_STREQ(kind_symbol(AtomKind::kSensitiveData), "●");
  EXPECT_STREQ(kind_symbol(AtomKind::kBenignData), "⊙");
}

TEST(KnowledgeTuple, RendersPaperStyle) {
  KnowledgeTuple user{true, false, true, false};
  EXPECT_EQ(user.to_string(), "(▲, ●)");
  KnowledgeTuple relay1{true, false, false, true};
  EXPECT_EQ(relay1.to_string(), "(▲, ⊙)");
  KnowledgeTuple relay2{false, true, true, true};
  EXPECT_EQ(relay2.to_string(), "(△, ⊙/●)");
  KnowledgeTuple nothing{};
  EXPECT_EQ(nothing.to_string(), "(-, -)");
}

// Build the paper's VPN cautionary-tale log by hand (§3.3).
ObservationLog vpn_log() {
  ObservationLog log;
  // User knows itself and its own browsing.
  log.observe("client", sensitive_identity("user:alice"), 1);
  log.observe("client", sensitive_data("url:embarrassing.example"), 1);
  // VPN server sees client IP and, terminating the tunnel, the request.
  log.observe("vpn", sensitive_identity("user:alice"), 2);
  log.observe("vpn", sensitive_data("url:embarrassing.example"), 2);
  // Origin sees the request, but only the VPN's address.
  log.observe("origin", benign_identity("addr:vpn"), 3);
  log.observe("origin", sensitive_data("url:embarrassing.example"), 3);
  return log;
}

// And an MPR-style log (§3.2.4).
ObservationLog mpr_log() {
  ObservationLog log;
  log.observe("client", sensitive_identity("user:alice"), 1);
  log.observe("client", sensitive_data("url:embarrassing.example"), 1);
  // Relay 1 sees the client address but only ciphertext.
  log.observe("relay1", sensitive_identity("user:alice"), 10);
  log.observe("relay1", benign_data("tunnel-bytes"), 10);
  log.link("relay1", 10, 11);  // it maps inbound flow to outbound flow
  // Relay 2 sees relay1's address and the origin FQDN.
  log.observe("relay2", benign_identity("addr:relay1"), 11);
  log.observe("relay2", benign_data("fqdn:embarrassing.example"), 11);
  log.link("relay2", 11, 12);
  // Origin sees relay2's address and the request.
  log.observe("origin", benign_identity("addr:relay2"), 12);
  log.observe("origin", sensitive_data("url:embarrassing.example"), 12);
  return log;
}

TEST(Analysis, VpnTupleMatchesPaperTable) {
  ObservationLog log = vpn_log();
  DecouplingAnalysis a(log);
  EXPECT_EQ(a.tuple_for("client").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("vpn").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("origin").to_string(), "(△, ●)");
}

TEST(Analysis, VpnIsNotDecoupled) {
  ObservationLog log = vpn_log();
  DecouplingAnalysis a(log);
  EXPECT_FALSE(a.is_decoupled("client"));
  EXPECT_EQ(a.violating_parties("client"), std::vector<Party>{"vpn"});
}

TEST(Analysis, MprIsDecoupled) {
  ObservationLog log = mpr_log();
  DecouplingAnalysis a(log);
  EXPECT_TRUE(a.is_decoupled("client"));
  EXPECT_TRUE(a.violating_parties("client").empty());
  EXPECT_EQ(a.tuple_for("relay1").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("relay2").to_string(), "(△, ⊙)");
  EXPECT_EQ(a.tuple_for("origin").to_string(), "(△, ●)");
}

TEST(Analysis, SinglePartyBreachInVpnCouples) {
  ObservationLog log = vpn_log();
  DecouplingAnalysis a(log);
  BreachReport vpn = a.breach("vpn");
  EXPECT_TRUE(vpn.coupled());
  EXPECT_EQ(vpn.coupled_records, 1u);
  // Breaching the origin alone yields data but no sensitive identity.
  EXPECT_FALSE(a.breach("origin").coupled());
}

TEST(Analysis, SinglePartyBreachInMprDoesNotCouple) {
  ObservationLog log = mpr_log();
  DecouplingAnalysis a(log);
  for (const Party p : {"relay1", "relay2", "origin"}) {
    EXPECT_FALSE(a.breach(p).coupled()) << p;
  }
}

TEST(Analysis, MprCollusionClosureNeedsFullChain) {
  ObservationLog log = mpr_log();
  DecouplingAnalysis a(log);
  // relay1 + relay2 couple alice to the FQDN? relay2 only logs the FQDN as
  // benign data; the sensitive URL lives at the origin. The full chain
  // relay1+relay2+origin re-couples.
  EXPECT_FALSE(a.coalition_recouples({"relay1"}));
  EXPECT_FALSE(a.coalition_recouples({"relay1", "origin"}));  // missing link 11->12
  EXPECT_TRUE(a.coalition_recouples({"relay1", "relay2", "origin"}));
  auto min_size = a.min_recoupling_coalition("client");
  ASSERT_TRUE(min_size.has_value());
  EXPECT_EQ(*min_size, 3u);
}

TEST(Analysis, VpnMinimalCoalitionIsOne) {
  ObservationLog log = vpn_log();
  DecouplingAnalysis a(log);
  auto min_size = a.min_recoupling_coalition("client");
  ASSERT_TRUE(min_size.has_value());
  EXPECT_EQ(*min_size, 1u);
}

TEST(Analysis, CoupledRecordCountsDistinctPairs) {
  ObservationLog log;
  log.observe("p", sensitive_identity("user:a"), 1);
  log.observe("p", sensitive_identity("user:b"), 2);
  log.observe("p", sensitive_data("q1"), 1);
  log.observe("p", sensitive_data("q2"), 1);
  log.observe("p", sensitive_data("q3"), 3);
  log.link("p", 2, 3);
  DecouplingAnalysis a(log);
  // a couples with q1,q2 (context 1); b couples with q3 (via link 2-3).
  EXPECT_EQ(a.coalition_coupled_records({"p"}), 3u);
}

TEST(Analysis, LinksFromNonMembersDoNotHelpCoalition) {
  ObservationLog log;
  log.observe("x", sensitive_identity("user:a"), 1);
  log.observe("y", sensitive_data("q"), 2);
  log.link("z", 1, 2);  // only z knows the flows match
  DecouplingAnalysis a(log);
  EXPECT_FALSE(a.coalition_recouples({"x", "y"}));
  EXPECT_TRUE(a.coalition_recouples({"x", "y", "z"}));
}

TEST(Analysis, RenderTableContainsPartiesAndTuples) {
  ObservationLog log = mpr_log();
  DecouplingAnalysis a(log);
  std::string table = a.render_table({"client", "relay1", "relay2", "origin"});
  EXPECT_NE(table.find("client"), std::string::npos);
  EXPECT_NE(table.find("(▲, ⊙)"), std::string::npos);
  EXPECT_NE(table.find("(△, ●)"), std::string::npos);
  // Unknown party renders placeholder.
  std::string t2 = a.render_table({"ghost"});
  EXPECT_NE(t2.find("(-)"), std::string::npos);
}


TEST(Analysis, RenderReportContainsAllSections) {
  ObservationLog log = vpn_log();
  DecouplingAnalysis a(log);
  std::string report = a.render_report("VPN analysis", {"client"});
  EXPECT_NE(report.find("# VPN analysis"), std::string::npos);
  EXPECT_NE(report.find("NOT decoupled"), std::string::npos);
  EXPECT_NE(report.find("vpn"), std::string::npos);
  EXPECT_NE(report.find("** EXPOSED **"), std::string::npos);
  EXPECT_NE(report.find("minimal re-coupling coalition: 1"),
            std::string::npos);
}

TEST(Analysis, RenderReportDecoupledSystem) {
  ObservationLog log = mpr_log();
  DecouplingAnalysis a(log);
  std::string report = a.render_report("MPR analysis", {"client"});
  EXPECT_NE(report.find("DECOUPLED"), std::string::npos);
  EXPECT_EQ(report.find("** EXPOSED **"), std::string::npos);
  EXPECT_NE(report.find("minimal re-coupling coalition: 3"),
            std::string::npos);
}

TEST(Analysis, FacetedTupleRendering) {
  ObservationLog log;
  log.observe("gw", sensitive_identity("subscriber:bob", "human"), 1);
  log.observe("gw", benign_identity("token", "network"), 1);
  log.observe("gw", benign_data("blob"), 1);
  DecouplingAnalysis a(log);
  const std::vector<std::pair<std::string, std::string>> facets = {
      {"human", "H"}, {"network", "N"}};
  EXPECT_EQ(a.faceted_tuple("gw", facets), "(▲H, △N, ⊙)");
  EXPECT_EQ(a.faceted_tuple("missing", facets), "(-H, -N, -)");
}


// §4.3: TEEs as a decoupling substrate. Model the enclave and its host
// operator as distinct parties: attested code inside the enclave sees the
// sensitive pair, the operator sees only ciphertext and tenancy metadata.
// Decoupling holds against the operator; "collusion" here means breaking
// the hardware (the paper's shifted locus of trust).
TEST(Analysis, TeeSplitsEnclaveFromOperator) {
  ObservationLog log;
  log.observe("user", sensitive_identity("user:dana"), 1);
  log.observe("user", sensitive_data("query:clinic"), 1);
  // The enclave (e.g. CACTI / Phoenix) processes the sensitive pair.
  log.observe("enclave@cloudhost", sensitive_identity("user:dana"), 2);
  log.observe("enclave@cloudhost", sensitive_data("query:clinic"), 2);
  // The operator of the same machine sees encrypted memory + billing.
  log.observe("cloudhost-operator", benign_identity("tenant:4711"), 3);
  log.observe("cloudhost-operator", benign_data("enclave-ciphertext"), 3);

  DecouplingAnalysis a(log);
  // Exempting the user AND the attested enclave (an extension of the user's
  // trust domain), the operator holds nothing sensitive.
  EXPECT_TRUE(a.is_decoupled(std::vector<Party>{"user", "enclave@cloudhost"}));
  EXPECT_FALSE(a.breach("cloudhost-operator").coupled());
  // But the framework also makes the §4.3 caveat visible: if the hardware
  // vendor's promise fails (enclave memory readable), the "enclave" party's
  // knowledge lands in the operator's lap — a single coupling point.
  EXPECT_TRUE(a.breach("enclave@cloudhost").coupled());
}

TEST(ObservationLog, PartyAccessors) {
  ObservationLog log;
  log.observe("b", benign_data("x"), 1);
  log.observe("a", benign_data("x"), 1);
  log.observe("a", benign_data("y"), 2);
  log.link("c", 1, 2);
  EXPECT_EQ(log.parties(), (std::vector<Party>{"a", "b", "c"}));
  EXPECT_EQ(log.for_party("a").size(), 2u);
  EXPECT_EQ(log.atoms_of("a").size(), 2u);
  EXPECT_EQ(log.size(), 3u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.parties().empty());
}

TEST(AddressBook, MapsAddressesToAtoms) {
  AddressBook book;
  book.set("10.0.0.1", sensitive_identity("user:alice", "network"));
  ObservationLog log;
  book.observe_src(log, "server", "10.0.0.1", 5);
  book.observe_src(log, "server", "203.0.113.9", 6);  // unregistered
  DecouplingAnalysis a(log);
  KnowledgeTuple t = a.tuple_for("server");
  EXPECT_TRUE(t.sensitive_identity);
  EXPECT_TRUE(t.benign_identity);
  EXPECT_FALSE(t.sensitive_data);
}

TEST(Metrics, EntropyBits) {
  EXPECT_DOUBLE_EQ(entropy_bits({1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(entropy_bits({4, 4, 4, 4}), 2.0);
  EXPECT_DOUBLE_EQ(entropy_bits({5, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({}), 0.0);
}

TEST(Metrics, EntropyBitsDegenerateInputs) {
  // Empty and all-zero histograms must yield 0 bits, never NaN.
  EXPECT_DOUBLE_EQ(entropy_bits({0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({0, 0, 0, 0}), 0.0);
  EXPECT_FALSE(std::isnan(entropy_bits({})));
  EXPECT_FALSE(std::isnan(entropy_bits({0, 0})));
}

TEST(Metrics, EffectiveAnonymitySet) {
  EXPECT_NEAR(effective_anonymity_set({0.25, 0.25, 0.25, 0.25}), 4.0, 1e-9);
  EXPECT_NEAR(effective_anonymity_set({1.0}), 1.0, 1e-9);
  // Skewed posterior shrinks the effective set.
  EXPECT_LT(effective_anonymity_set({0.9, 0.05, 0.05}), 2.0);
}

TEST(Metrics, EffectiveAnonymitySetDegenerateInputs) {
  // No posterior mass = no candidate users: the effective set is 0, not
  // 2^0 = 1, and never NaN.
  EXPECT_DOUBLE_EQ(effective_anonymity_set({}), 0.0);
  EXPECT_DOUBLE_EQ(effective_anonymity_set({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(effective_anonymity_set({-0.5, 0.0}), 0.0);
  EXPECT_FALSE(std::isnan(effective_anonymity_set({})));
  // A stray NaN entry is skipped rather than poisoning the estimate.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NEAR(effective_anonymity_set({0.5, 0.5, nan}), 2.0, 1e-9);
}

}  // namespace
}  // namespace dcpl::core
