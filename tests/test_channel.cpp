// The shared request/response HPKE channel used by OHTTP, ODoH, MPR, ECH.
#include "systems/channel.hpp"

#include <gtest/gtest.h>

#include "crypto/csprng.hpp"

namespace dcpl::systems {
namespace {

TEST(Channel, RequestResponseRoundTrip) {
  crypto::ChaChaRng rng(1);
  auto kp = hpke::KeyPair::generate(rng);

  RequestState req = seal_request(kp.public_key, to_bytes("app"),
                                  to_bytes("the request"), rng);
  auto server = open_request(kp, to_bytes("app"), req.encapsulated);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(to_string(server->request), "the request");
  EXPECT_EQ(server->response_key, req.response_key);

  Bytes sealed = seal_response(server->response_key, to_bytes("the reply"),
                               rng);
  auto reply = open_response(req.response_key, sealed);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value()), "the reply");
}

TEST(Channel, InfoStringIsBinding) {
  crypto::ChaChaRng rng(2);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState req =
      seal_request(kp.public_key, to_bytes("proto-a"), to_bytes("x"), rng);
  EXPECT_FALSE(open_request(kp, to_bytes("proto-b"), req.encapsulated).ok());
}

TEST(Channel, WrongServerKeyFails) {
  crypto::ChaChaRng rng(3);
  auto kp = hpke::KeyPair::generate(rng);
  auto other = hpke::KeyPair::generate(rng);
  RequestState req =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("x"), rng);
  EXPECT_FALSE(open_request(other, to_bytes("app"), req.encapsulated).ok());
}

TEST(Channel, ResponseKeysDifferPerRequest) {
  crypto::ChaChaRng rng(4);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState a =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("same"), rng);
  RequestState b =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("same"), rng);
  EXPECT_NE(a.response_key, b.response_key);
  EXPECT_NE(a.encapsulated, b.encapsulated);
}

TEST(Channel, ResponseCannotBeReadWithWrongKey) {
  crypto::ChaChaRng rng(5);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState a =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("q1"), rng);
  RequestState b =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("q2"), rng);
  Bytes sealed = seal_response(a.response_key, to_bytes("for a"), rng);
  EXPECT_FALSE(open_response(b.response_key, sealed).ok());
  EXPECT_TRUE(open_response(a.response_key, sealed).ok());
}

TEST(Channel, TamperedMessagesRejected) {
  crypto::ChaChaRng rng(6);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState req =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("payload"), rng);

  Bytes bad = req.encapsulated;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(open_request(kp, to_bytes("app"), bad).ok());

  Bytes sealed = seal_response(req.response_key, to_bytes("resp"), rng);
  Bytes bad_resp = sealed;
  bad_resp.back() ^= 1;
  EXPECT_FALSE(open_response(req.response_key, bad_resp).ok());
}

TEST(Channel, TruncatedInputsRejectedGracefully) {
  crypto::ChaChaRng rng(7);
  auto kp = hpke::KeyPair::generate(rng);
  EXPECT_FALSE(open_request(kp, {}, Bytes(5)).ok());
  EXPECT_FALSE(open_request(kp, {}, Bytes{}).ok());
  EXPECT_FALSE(open_response(rng.bytes(32), Bytes(4)).ok());
}

TEST(Channel, EmptyPayloadsWork) {
  crypto::ChaChaRng rng(8);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState req = seal_request(kp.public_key, {}, {}, rng);
  auto server = open_request(kp, {}, req.encapsulated);
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE(server->request.empty());
  Bytes sealed = seal_response(server->response_key, {}, rng);
  auto reply = open_response(req.response_key, sealed);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->empty());
}

class ChannelSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSizes, RoundTripAtSize) {
  crypto::ChaChaRng rng(GetParam() + 9);
  auto kp = hpke::KeyPair::generate(rng);
  Bytes payload = rng.bytes(GetParam());
  RequestState req = seal_request(kp.public_key, to_bytes("s"), payload, rng);
  auto server = open_request(kp, to_bytes("s"), req.encapsulated);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server->request, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizes,
                         ::testing::Values(1, 100, 10000, 100000));


TEST(Channel, PaddingQuantizesAndRoundTrips) {
  XoshiroRng rng(11);
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 100u, 255u}) {
    Bytes payload = rng.bytes(len);
    Bytes padded = pad_to_bucket(payload, 32);
    EXPECT_EQ(padded.size() % 32, 0u) << len;
    EXPECT_GE(padded.size(), len + 1);
    auto unpadded = unpad(padded);
    ASSERT_TRUE(unpadded.ok()) << len;
    EXPECT_EQ(unpadded.value(), payload);
  }
  EXPECT_THROW(pad_to_bucket(Bytes{}, 0), std::invalid_argument);
}

TEST(Channel, UnpadRejectsMalformedPadding) {
  EXPECT_FALSE(unpad(Bytes{}).ok());
  EXPECT_FALSE(unpad(Bytes(16, 0)).ok());          // no 0x80 marker
  EXPECT_FALSE(unpad(Bytes{0x01, 0x02}).ok());     // ends in data
}

TEST(Channel, PaddingHidesLengthWithinBucket) {
  // Two payloads of different length in the same bucket produce identical
  // padded sizes — the §4.3 anti-fingerprinting property.
  Bytes a(10, 'a'), b(25, 'b');
  EXPECT_EQ(pad_to_bucket(a, 64).size(), pad_to_bucket(b, 64).size());
}

// ---- Session channels ------------------------------------------------------

TEST(SessionChannel, ManyMessagesOverOneEncapsulation) {
  crypto::ChaChaRng rng(40);
  auto kp = hpke::KeyPair::generate(rng);
  SessionSender sender(kp.public_key, to_bytes("session"), rng);
  auto accepted = SessionReceiver::accept(kp, to_bytes("session"),
                                          sender.enc());
  ASSERT_TRUE(accepted.ok());
  SessionReceiver receiver = std::move(accepted.value());

  // One KEM setup, then both directions stream frames: request i up,
  // response i down, interleaved like a real exchange.
  for (int i = 0; i < 50; ++i) {
    const std::string msg = "request " + std::to_string(i);
    Bytes frame = sender.seal(to_bytes(msg));
    auto got = receiver.open(frame);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(to_string(got.value()), msg);

    const std::string reply = "response " + std::to_string(i);
    Bytes rframe = receiver.seal_response(to_bytes(reply));
    auto rgot = sender.open_response(rframe);
    ASSERT_TRUE(rgot.ok()) << i;
    EXPECT_EQ(to_string(rgot.value()), reply);
  }
  EXPECT_EQ(sender.sealed(), 50u);
  EXPECT_EQ(receiver.opened(), 50u);
}

TEST(SessionChannel, RejectsReorderedAndReplayedFrames) {
  crypto::ChaChaRng rng(41);
  auto kp = hpke::KeyPair::generate(rng);
  SessionSender sender(kp.public_key, to_bytes("session"), rng);
  auto accepted = SessionReceiver::accept(kp, to_bytes("session"),
                                          sender.enc());
  ASSERT_TRUE(accepted.ok());
  SessionReceiver receiver = std::move(accepted.value());

  Bytes first = sender.seal(to_bytes("one"));
  Bytes second = sender.seal(to_bytes("two"));
  // Reordered: the seq prefix exposes the skip before any AEAD work.
  EXPECT_FALSE(receiver.open(second).ok());
  ASSERT_TRUE(receiver.open(first).ok());
  // Replay of an already-consumed frame.
  EXPECT_FALSE(receiver.open(first).ok());
  ASSERT_TRUE(receiver.open(second).ok());
  EXPECT_EQ(receiver.opened(), 2u);
}

TEST(SessionChannel, RejectsTamperedAndTruncatedFrames) {
  crypto::ChaChaRng rng(42);
  auto kp = hpke::KeyPair::generate(rng);
  SessionSender sender(kp.public_key, to_bytes("session"), rng);
  auto accepted = SessionReceiver::accept(kp, to_bytes("session"),
                                          sender.enc());
  ASSERT_TRUE(accepted.ok());
  SessionReceiver receiver = std::move(accepted.value());

  Bytes frame = sender.seal(to_bytes("payload"));
  Bytes flipped = frame;
  flipped.back() ^= 0x01;
  EXPECT_FALSE(receiver.open(flipped).ok());
  EXPECT_FALSE(receiver.open(Bytes{}).ok());
  Bytes truncated(frame.begin(), frame.begin() + 2);
  EXPECT_FALSE(receiver.open(truncated).ok());
  // The intact frame still opens: failed attempts consumed no sequence.
  EXPECT_TRUE(receiver.open(frame).ok());
}

TEST(SessionChannel, ResponseDirectionEnforcesOrderToo) {
  crypto::ChaChaRng rng(43);
  auto kp = hpke::KeyPair::generate(rng);
  SessionSender sender(kp.public_key, to_bytes("session"), rng);
  auto accepted = SessionReceiver::accept(kp, to_bytes("session"),
                                          sender.enc());
  ASSERT_TRUE(accepted.ok());
  SessionReceiver receiver = std::move(accepted.value());
  ASSERT_TRUE(receiver.open(sender.seal(to_bytes("hi"))).ok());

  Bytes r1 = receiver.seal_response(to_bytes("a"));
  Bytes r2 = receiver.seal_response(to_bytes("b"));
  EXPECT_FALSE(sender.open_response(r2).ok());  // out of order
  ASSERT_TRUE(sender.open_response(r1).ok());
  ASSERT_TRUE(sender.open_response(r2).ok());
  EXPECT_FALSE(sender.open_response(r2).ok());  // replay
}

TEST(SessionChannel, AcceptRejectsMalformedEncapsulatedKey) {
  crypto::ChaChaRng rng(44);
  auto kp = hpke::KeyPair::generate(rng);
  EXPECT_FALSE(SessionReceiver::accept(kp, to_bytes("s"), Bytes(5, 1)).ok());
  SessionSender sender(kp.public_key, to_bytes("s"), rng);
  auto other = hpke::KeyPair::generate(rng);
  // Wrong key decapsulates to a different context: frames won't open.
  auto wrong = SessionReceiver::accept(other, to_bytes("s"), sender.enc());
  if (wrong.ok()) {
    EXPECT_FALSE(wrong.value().open(sender.seal(to_bytes("x"))).ok());
  }
}

}  // namespace
}  // namespace dcpl::systems
