// The shared request/response HPKE channel used by OHTTP, ODoH, MPR, ECH.
#include "systems/channel.hpp"

#include <gtest/gtest.h>

#include "crypto/csprng.hpp"

namespace dcpl::systems {
namespace {

TEST(Channel, RequestResponseRoundTrip) {
  crypto::ChaChaRng rng(1);
  auto kp = hpke::KeyPair::generate(rng);

  RequestState req = seal_request(kp.public_key, to_bytes("app"),
                                  to_bytes("the request"), rng);
  auto server = open_request(kp, to_bytes("app"), req.encapsulated);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(to_string(server->request), "the request");
  EXPECT_EQ(server->response_key, req.response_key);

  Bytes sealed = seal_response(server->response_key, to_bytes("the reply"),
                               rng);
  auto reply = open_response(req.response_key, sealed);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value()), "the reply");
}

TEST(Channel, InfoStringIsBinding) {
  crypto::ChaChaRng rng(2);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState req =
      seal_request(kp.public_key, to_bytes("proto-a"), to_bytes("x"), rng);
  EXPECT_FALSE(open_request(kp, to_bytes("proto-b"), req.encapsulated).ok());
}

TEST(Channel, WrongServerKeyFails) {
  crypto::ChaChaRng rng(3);
  auto kp = hpke::KeyPair::generate(rng);
  auto other = hpke::KeyPair::generate(rng);
  RequestState req =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("x"), rng);
  EXPECT_FALSE(open_request(other, to_bytes("app"), req.encapsulated).ok());
}

TEST(Channel, ResponseKeysDifferPerRequest) {
  crypto::ChaChaRng rng(4);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState a =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("same"), rng);
  RequestState b =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("same"), rng);
  EXPECT_NE(a.response_key, b.response_key);
  EXPECT_NE(a.encapsulated, b.encapsulated);
}

TEST(Channel, ResponseCannotBeReadWithWrongKey) {
  crypto::ChaChaRng rng(5);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState a =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("q1"), rng);
  RequestState b =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("q2"), rng);
  Bytes sealed = seal_response(a.response_key, to_bytes("for a"), rng);
  EXPECT_FALSE(open_response(b.response_key, sealed).ok());
  EXPECT_TRUE(open_response(a.response_key, sealed).ok());
}

TEST(Channel, TamperedMessagesRejected) {
  crypto::ChaChaRng rng(6);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState req =
      seal_request(kp.public_key, to_bytes("app"), to_bytes("payload"), rng);

  Bytes bad = req.encapsulated;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(open_request(kp, to_bytes("app"), bad).ok());

  Bytes sealed = seal_response(req.response_key, to_bytes("resp"), rng);
  Bytes bad_resp = sealed;
  bad_resp.back() ^= 1;
  EXPECT_FALSE(open_response(req.response_key, bad_resp).ok());
}

TEST(Channel, TruncatedInputsRejectedGracefully) {
  crypto::ChaChaRng rng(7);
  auto kp = hpke::KeyPair::generate(rng);
  EXPECT_FALSE(open_request(kp, {}, Bytes(5)).ok());
  EXPECT_FALSE(open_request(kp, {}, Bytes{}).ok());
  EXPECT_FALSE(open_response(rng.bytes(32), Bytes(4)).ok());
}

TEST(Channel, EmptyPayloadsWork) {
  crypto::ChaChaRng rng(8);
  auto kp = hpke::KeyPair::generate(rng);
  RequestState req = seal_request(kp.public_key, {}, {}, rng);
  auto server = open_request(kp, {}, req.encapsulated);
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE(server->request.empty());
  Bytes sealed = seal_response(server->response_key, {}, rng);
  auto reply = open_response(req.response_key, sealed);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->empty());
}

class ChannelSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSizes, RoundTripAtSize) {
  crypto::ChaChaRng rng(GetParam() + 9);
  auto kp = hpke::KeyPair::generate(rng);
  Bytes payload = rng.bytes(GetParam());
  RequestState req = seal_request(kp.public_key, to_bytes("s"), payload, rng);
  auto server = open_request(kp, to_bytes("s"), req.encapsulated);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server->request, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizes,
                         ::testing::Values(1, 100, 10000, 100000));


TEST(Channel, PaddingQuantizesAndRoundTrips) {
  XoshiroRng rng(11);
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 100u, 255u}) {
    Bytes payload = rng.bytes(len);
    Bytes padded = pad_to_bucket(payload, 32);
    EXPECT_EQ(padded.size() % 32, 0u) << len;
    EXPECT_GE(padded.size(), len + 1);
    auto unpadded = unpad(padded);
    ASSERT_TRUE(unpadded.ok()) << len;
    EXPECT_EQ(unpadded.value(), payload);
  }
  EXPECT_THROW(pad_to_bucket(Bytes{}, 0), std::invalid_argument);
}

TEST(Channel, UnpadRejectsMalformedPadding) {
  EXPECT_FALSE(unpad(Bytes{}).ok());
  EXPECT_FALSE(unpad(Bytes(16, 0)).ok());          // no 0x80 marker
  EXPECT_FALSE(unpad(Bytes{0x01, 0x02}).ok());     // ends in data
}

TEST(Channel, PaddingHidesLengthWithinBucket) {
  // Two payloads of different length in the same bucket produce identical
  // padded sizes — the §4.3 anti-fingerprinting property.
  Bytes a(10, 'a'), b(25, 'b');
  EXPECT_EQ(pad_to_bucket(a, 64).size(), pad_to_bucket(b, 64).size());
}

}  // namespace
}  // namespace dcpl::systems
