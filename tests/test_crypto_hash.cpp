// SHA-256 (FIPS 180-4), HMAC-SHA256 (RFC 4231) and HKDF (RFC 5869) vectors.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace dcpl::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::hash(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, OneMillionAs) {
  Sha256 ctx;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  auto d = ctx.digest();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  // Feed the same message in every possible split position.
  Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog.");
  Bytes expected = Sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(msg).first(split));
    ctx.update(BytesView(msg).subspan(split));
    auto d = ctx.digest();
    EXPECT_EQ(Bytes(d.begin(), d.end()), expected) << "split=" << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Lengths around the 55/56/64 padding boundaries must all differ and be
  // stable under re-computation.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes m(len, 0x5a);
    EXPECT_EQ(Sha256::hash(m), Sha256::hash(m));
    Bytes m2(len + 1, 0x5a);
    EXPECT_NE(Sha256::hash(m), Sha256::hash(m2));
  }
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: short key.
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // Keys longer than the block size are pre-hashed; equivalent short key.
  Bytes long_key(100, 0x42);
  Bytes short_key = Sha256::hash(long_key);
  Bytes msg = to_bytes("message");
  EXPECT_EQ(hmac_sha256(long_key, msg), hmac_sha256(short_key, msg));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");

  Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: empty salt and info.
TEST(Hkdf, Rfc5869Case3) {
  Bytes ikm(22, 0x0b);
  Bytes prk = hkdf_extract({}, ikm);
  EXPECT_EQ(to_hex(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  Bytes okm = hkdf_expand(prk, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthLimits) {
  Bytes prk = hkdf_extract({}, to_bytes("ikm"));
  EXPECT_EQ(hkdf_expand(prk, {}, 255 * 32).size(), 255u * 32);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
  EXPECT_TRUE(hkdf_expand(prk, {}, 0).empty());
}

TEST(Hkdf, PrefixConsistency) {
  // Shorter outputs are prefixes of longer ones (streaming KDF property).
  Bytes prk = hkdf_extract(to_bytes("salt"), to_bytes("ikm"));
  Bytes info = to_bytes("ctx");
  Bytes long_okm = hkdf_expand(prk, info, 80);
  for (std::size_t len : {1u, 31u, 32u, 33u, 64u, 79u}) {
    Bytes short_okm = hkdf_expand(prk, info, len);
    EXPECT_EQ(short_okm, Bytes(long_okm.begin(),
                               long_okm.begin() + static_cast<long>(len)));
  }
}

}  // namespace
}  // namespace dcpl::crypto
