// SHA-512/SHA-384 with derived constants. The constant generator is
// cross-validated against SHA-256's well-known 32-bit tables, then the
// digests against the official FIPS 180-4 vectors.
#include "crypto/sha512.hpp"

#include <gtest/gtest.h>

namespace dcpl::crypto {
namespace {

TEST(Sha2Constants, FirstPrimes) {
  auto p = first_primes(10);
  EXPECT_EQ(p, (std::vector<std::uint64_t>{2, 3, 5, 7, 11, 13, 17, 19, 23,
                                           29}));
  EXPECT_EQ(first_primes(80).back(), 409u);
}

// The generator must reproduce SHA-256's hardcoded tables (FIPS 180-4
// §4.2.2/§5.3.3) when asked for 32 fractional bits.
TEST(Sha2Constants, GeneratorReproducesSha256RoundConstants) {
  const std::uint32_t expected_first8[] = {0x428a2f98, 0x71374491, 0xb5c0fbcf,
                                           0xe9b5dba5, 0x3956c25b, 0x59f111f1,
                                           0x923f82a4, 0xab1c5ed5};
  auto primes = first_primes(64);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(frac_cbrt_bits(primes[i], 32), expected_first8[i]) << i;
  }
  // And the last one: K[63] = 0xc67178f2 (prime 311).
  EXPECT_EQ(frac_cbrt_bits(primes[63], 32), 0xc67178f2u);
}

TEST(Sha2Constants, GeneratorReproducesSha256InitialValues) {
  const std::uint32_t expected[] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};
  auto primes = first_primes(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(frac_sqrt_bits(primes[i], 32), expected[i]) << i;
  }
}

TEST(Sha2Constants, Known64BitValues) {
  // SHA-512's first round constant and first IV word are well known.
  EXPECT_EQ(frac_cbrt_bits(2, 64), 0x428a2f98d728ae22ULL);
  EXPECT_EQ(frac_sqrt_bits(2, 64), 0x6a09e667f3bcc908ULL);
}

// FIPS 180-4 / NIST example vectors.
TEST(Sha512, EmptyString) {
  EXPECT_EQ(to_hex(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(Sha512::hash(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha384, Abc) {
  EXPECT_EQ(to_hex(Sha384::hash(to_bytes("abc"))),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha512, StreamingMatchesOneShot) {
  Bytes msg = to_bytes(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  // NIST two-block vector for SHA-512.
  EXPECT_EQ(to_hex(Sha512::hash(msg)),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
  for (std::size_t split = 0; split <= msg.size(); split += 13) {
    Sha512 ctx;
    ctx.update(BytesView(msg).first(split));
    ctx.update(BytesView(msg).subspan(split));
    auto d = ctx.digest();
    EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
              to_hex(Sha512::hash(msg)));
  }
}

TEST(Sha512, PaddingBoundaries) {
  for (std::size_t len : {110u, 111u, 112u, 113u, 127u, 128u, 129u, 239u,
                          240u, 241u}) {
    Bytes m(len, 0x61);
    EXPECT_EQ(Sha512::hash(m), Sha512::hash(m));
    Bytes m2(len + 1, 0x61);
    EXPECT_NE(Sha512::hash(m), Sha512::hash(m2));
  }
}

TEST(Sha512, MillionAs) {
  Sha512 ctx;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  auto d = ctx.digest();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

// RFC 4231 test case 1 and 2 for HMAC-SHA512.
TEST(HmacSha512, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha512(key, to_bytes("Hi There"))),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

TEST(HmacSha512, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha512(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554"
            "9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737");
}

TEST(HmacSha512, LongKeyIsHashedFirst) {
  Bytes long_key(200, 0x42);
  Bytes short_key = Sha512::hash(long_key);
  Bytes msg = to_bytes("message");
  EXPECT_EQ(hmac_sha512(long_key, msg), hmac_sha512(short_key, msg));
}

}  // namespace
}  // namespace dcpl::crypto
