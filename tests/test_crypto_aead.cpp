// ChaCha20, Poly1305, and ChaCha20-Poly1305 AEAD vectors from RFC 8439.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/csprng.hpp"
#include "crypto/poly1305.hpp"

namespace dcpl::crypto {
namespace {

const char* kSunscreen =
    "Ladies and Gentlemen of the class of '99: If I could offer you "
    "only one tip for the future, sunscreen would be it.";

// RFC 8439 §2.3.2: first block with the test key/nonce/counter.
TEST(ChaCha20, BlockFunctionVector) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000090000004a00000000");
  auto block = chacha20_block(key, 1, nonce);
  EXPECT_EQ(
      to_hex(BytesView(block.data(), block.size())),
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2: full encryption vector.
TEST(ChaCha20, EncryptionVector) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000000000004a00000000");
  Bytes ct = chacha20_xor(key, 1, nonce, to_bytes(kSunscreen));
  EXPECT_EQ(
      to_hex(ct),
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  XoshiroRng rng(1);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 200u}) {
    Bytes pt = rng.bytes(len);
    Bytes ct = chacha20_xor(key, 7, nonce, pt);
    EXPECT_EQ(chacha20_xor(key, 7, nonce, ct), pt) << "len=" << len;
    if (len > 0) {
      EXPECT_NE(ct, pt);
    }
  }
}

TEST(ChaCha20, RejectsBadSizes) {
  Bytes ok_key(32), ok_nonce(12), msg(4);
  EXPECT_THROW(chacha20_xor(Bytes(16), 0, ok_nonce, msg),
               std::invalid_argument);
  EXPECT_THROW(chacha20_xor(ok_key, 0, Bytes(8), msg), std::invalid_argument);
}

// RFC 8439 §2.5.2.
TEST(Poly1305, TagVector) {
  Bytes key = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  Bytes tag =
      poly1305_mac(key, to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(to_hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage) {
  // With r = 0 the tag equals s (the second key half).
  Bytes key(32, 0);
  for (int i = 16; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  Bytes tag = poly1305_mac(key, {});
  EXPECT_EQ(tag, Bytes(key.begin() + 16, key.end()));
}

TEST(Poly1305, BlockBoundaryLengths) {
  XoshiroRng rng(3);
  Bytes key = rng.bytes(32);
  // Distinct messages around the 16-byte block boundary yield distinct tags.
  Bytes prev;
  for (std::size_t len : {15u, 16u, 17u, 31u, 32u, 33u}) {
    Bytes tag = poly1305_mac(key, rng.bytes(len));
    EXPECT_NE(tag, prev);
    prev = tag;
  }
}

// RFC 8439 §2.8.2.
TEST(Aead, Rfc8439Vector) {
  Bytes key = from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  Bytes nonce = from_hex("070000004041424344454647");
  Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");

  Bytes sealed = aead_seal(key, nonce, aad, to_bytes(kSunscreen));
  EXPECT_EQ(
      to_hex(sealed),
      "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
      "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
      "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
      "3ff4def08e4b7a9de576d26586cec64b6116"
      "1ae10b594f09e26a7e902ecbd0600691");

  auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(opened.value()), kSunscreen);
}

TEST(Aead, TamperedCiphertextFails) {
  ChaChaRng rng(99);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  Bytes sealed = aead_seal(key, nonce, to_bytes("aad"), to_bytes("secret"));
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(aead_open(key, nonce, to_bytes("aad"), bad).ok()) << i;
  }
}

TEST(Aead, WrongAadFails) {
  ChaChaRng rng(100);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  Bytes sealed = aead_seal(key, nonce, to_bytes("aad"), to_bytes("secret"));
  EXPECT_FALSE(aead_open(key, nonce, to_bytes("AAD"), sealed).ok());
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).ok());
}

TEST(Aead, WrongKeyOrNonceFails) {
  ChaChaRng rng(101);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  Bytes sealed = aead_seal(key, nonce, {}, to_bytes("secret"));
  Bytes key2 = key;
  key2[0] ^= 1;
  Bytes nonce2 = nonce;
  nonce2[0] ^= 1;
  EXPECT_FALSE(aead_open(key2, nonce, {}, sealed).ok());
  EXPECT_FALSE(aead_open(key, nonce2, {}, sealed).ok());
}

TEST(Aead, TruncatedInputFails) {
  ChaChaRng rng(102);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  EXPECT_FALSE(aead_open(key, nonce, {}, Bytes(15)).ok());
  EXPECT_FALSE(aead_open(key, nonce, {}, Bytes{}).ok());
}

TEST(Aead, EmptyPlaintextRoundTrip) {
  ChaChaRng rng(103);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  Bytes sealed = aead_seal(key, nonce, to_bytes("hdr"), {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  auto opened = aead_open(key, nonce, to_bytes("hdr"), sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().empty());
}

class AeadRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadRoundTrip, SealOpenAtLength) {
  ChaChaRng rng(GetParam() + 1000);
  Bytes key = rng.bytes(32), nonce = rng.bytes(12);
  Bytes pt = rng.bytes(GetParam());
  Bytes aad = rng.bytes(GetParam() % 40);
  Bytes sealed = aead_seal(key, nonce, aad, pt);
  EXPECT_EQ(sealed.size(), pt.size() + kAeadTagSize);
  auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AeadRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 255,
                                           256, 1000, 4096));

// RFC 8439's state has no carry from the 32-bit block counter into the
// nonce words, so a wrap would replay keystream blocks 0, 1, ... under the
// same (key, nonce). The guard must reject exactly the wrapping calls.
TEST(ChaCha20, CounterWrapGuard) {
  Bytes key(kChaChaKeySize, 0x01);
  Bytes nonce(kChaChaNonceSize, 0x02);
  const std::uint32_t last = 0xFFFFFFFFu;  // one block left before the wrap

  // 64 bytes = exactly the final block: allowed.
  EXPECT_NO_THROW(chacha20_xor(key, last, nonce, Bytes(64, 0)));
  // 65 bytes needs a second block at counter 0: keystream reuse, rejected.
  EXPECT_THROW(chacha20_xor(key, last, nonce, Bytes(65, 0)),
               std::length_error);
  // Same guard on the in-place variant.
  Bytes buf(65, 0);
  EXPECT_THROW(chacha20_xor_into(key, last, nonce, buf, buf.data()),
               std::length_error);
  // Two blocks starting one before the end: allowed, the last usable pair.
  EXPECT_NO_THROW(chacha20_xor(key, last - 1, nonce, Bytes(128, 0)));
  EXPECT_THROW(chacha20_xor(key, last - 1, nonce, Bytes(129, 0)),
               std::length_error);
}

TEST(ChaCha20, XorIntoMatchesXorIncludingInPlace) {
  ChaChaRng rng(77);
  Bytes key = rng.bytes(kChaChaKeySize), nonce = rng.bytes(kChaChaNonceSize);
  Bytes data = rng.bytes(300);
  Bytes want = chacha20_xor(key, 7, nonce, data);
  Bytes out(data.size());
  chacha20_xor_into(key, 7, nonce, data, out.data());
  EXPECT_EQ(out, want);
  // In-place: out aliases data.
  Bytes in_place = data;
  chacha20_xor_into(key, 7, nonce, in_place, in_place.data());
  EXPECT_EQ(in_place, want);
}

TEST(ChaChaRng, DeterministicAndSeedSensitive) {
  ChaChaRng a(BytesView(to_bytes("seed"))), b(BytesView(to_bytes("seed")));
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  ChaChaRng c(BytesView(to_bytes("seed2")));
  EXPECT_NE(a.bytes(100), c.bytes(100));
}

}  // namespace
}  // namespace dcpl::crypto
