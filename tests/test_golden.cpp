// Golden wire-format tests: pin the exact bytes of every serialization so
// accidental format changes (which would silently break interop between a
// client and server built from different revisions) fail loudly.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "http/message.hpp"
#include "systems/mixnet/mixnet.hpp"

namespace dcpl {
namespace {

TEST(Golden, DnsQueryWireBytes) {
  dns::Message q;
  q.id = 0x1234;
  q.recursion_desired = true;
  q.questions.push_back(
      dns::Question{"www.example.com", dns::RecordType::kA, dns::kClassIn});
  EXPECT_EQ(to_hex(q.encode()),
            "12340100000100000000000003777777076578616d706c6503636f6d00"
            "00010001");
}

TEST(Golden, DnsResponseWireBytes) {
  dns::Message m;
  m.id = 0x0001;
  m.is_response = true;
  m.authoritative = true;
  m.questions.push_back(
      dns::Question{"a.b", dns::RecordType::kA, dns::kClassIn});
  m.answers.push_back(dns::ResourceRecord{"a.b", dns::RecordType::kA,
                                          dns::kClassIn, 60,
                                          dns::a_rdata("192.0.2.1")});
  EXPECT_EQ(to_hex(m.encode()),
            "00018400000100010000000001610162000001000101610162000001"
            "00010000003c0004c0000201");
}

TEST(Golden, HttpRequestWireBytes) {
  http::Request req;
  req.method = "GET";
  req.authority = "a.example";
  req.path = "/x";
  req.headers = {{"K", "V"}};
  req.body = to_bytes("hi");
  EXPECT_EQ(to_hex(req.encode_binary()),
            "03474554"                    // method "GET"
            "0009612e6578616d706c65"      // authority
            "00022f78"                    // path "/x"
            "0001" "00014b" "000156"      // 1 header: "K" -> "V"
            "000000026869");              // body "hi"
}

TEST(Golden, HttpResponseWireBytes) {
  http::Response resp;
  resp.status = 404;
  resp.body = to_bytes("no");
  EXPECT_EQ(to_hex(resp.encode_binary()),
            "0194"            // status 404
            "0000"            // 0 headers
            "000000026e6f");  // body "no"
}

TEST(Golden, ReplyBlockWireBytes) {
  systems::mixnet::ReplyBlock block;
  block.first_hop = "mix1";
  block.header = {0xde, 0xad};
  EXPECT_EQ(to_hex(block.encode()), "00046d69783100000002dead");
  auto decoded = systems::mixnet::ReplyBlock::decode(block.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first_hop, "mix1");
}

TEST(Golden, DnsNameEncoding) {
  EXPECT_EQ(to_hex(dns::encode_name("a.bc")), "016102626300");
  EXPECT_EQ(to_hex(dns::encode_name("")), "00");  // root
}

}  // namespace
}  // namespace dcpl
