// Fault-injection tier: simulator-level fault mechanics (loss, duplication,
// jitter, partitions, crashes, breaches) plus the adversarial properties the
// reliability layer must uphold — any seeded FaultPlan with loss < 1 lets a
// flow complete with its decoupling table unchanged or fail with a typed
// error, never hang, and never manufacture a coupling that the fault-free
// run didn't have.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/analysis.hpp"
#include "net/faults.hpp"
#include "net/sim.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "impaired_systems.hpp"
#include "systems/mpr/mpr.hpp"
#include "systems/ohttp/ohttp.hpp"
#include "systems/retry.hpp"

namespace dcpl {
namespace {

/// Records every delivery it receives.
class Sink final : public net::Node {
 public:
  explicit Sink(net::Address address) : net::Node(std::move(address)) {}

  void on_packet(const net::Packet& p, net::Simulator& sim) override {
    received.push_back(p);
    times.push_back(sim.now());
  }

  std::vector<net::Packet> received;
  std::vector<net::Time> times;
};

// ---------------------------------------------------------------------------
// Simulator-level fault mechanics.
// ---------------------------------------------------------------------------

TEST(Faults, TotalLossDropsEveryPacket) {
  net::Simulator sim;
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  net::FaultPlan plan(1);
  plan.impair(net::Impairment{1.0, 0.0, 0.0, 0});
  sim.set_fault_plan(plan);

  for (int i = 0; i < 20; ++i) {
    sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  }
  sim.run();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.fault_stats().lost, 20u);
  EXPECT_EQ(sim.fault_stats().total_dropped(), 20u);
}

TEST(Faults, CertainDuplicationDoublesDeliveries) {
  net::Simulator sim;
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  net::FaultPlan plan(1);
  plan.impair(net::Impairment{0.0, 1.0, 0.0, 0});
  sim.set_fault_plan(plan);

  for (int i = 0; i < 20; ++i) {
    sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  }
  sim.run();

  EXPECT_EQ(b.received.size(), 40u);
  EXPECT_EQ(sim.fault_stats().duplicated, 20u);
  EXPECT_EQ(sim.fault_stats().total_dropped(), 0u);
}

TEST(Faults, JitterDelaysStayWithinConfiguredBound) {
  net::Simulator sim;
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  net::FaultPlan plan(3);
  plan.impair(net::Impairment{0.0, 0.0, 1.0, 5'000});
  sim.set_fault_plan(plan);

  for (int i = 0; i < 50; ++i) {
    sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  }
  sim.run();

  ASSERT_EQ(b.received.size(), 50u);
  EXPECT_EQ(sim.fault_stats().jittered, 50u);
  bool any_delayed = false;
  for (net::Time t : b.times) {
    EXPECT_GE(t, 10'000u);  // default link latency
    EXPECT_LE(t, 15'000u);  // + jitter_max_us
    any_delayed |= t > 10'000u;
  }
  EXPECT_TRUE(any_delayed);
}

TEST(Faults, PerLinkImpairmentOverridesGlobal) {
  net::Simulator sim;
  Sink a("a"), b("b"), c("c");
  sim.add_node(a);
  sim.add_node(b);
  sim.add_node(c);
  net::FaultPlan plan(1);
  plan.impair(net::Impairment{1.0, 0.0, 0.0, 0});
  plan.impair_link("a", "b", net::Impairment{});  // clean override
  sim.set_fault_plan(plan);

  for (int i = 0; i < 10; ++i) {
    sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
    sim.send(net::Packet{"a", "c", to_bytes("x"), 0, "t"});
  }
  sim.run();

  EXPECT_EQ(b.received.size(), 10u);
  EXPECT_TRUE(c.received.empty());
  EXPECT_EQ(sim.fault_stats().lost, 10u);
}

TEST(Faults, PartitionWindowDropsBothDirections) {
  net::Simulator sim;
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  net::FaultPlan plan(1);
  plan.partition("a", "b", 10'000, 30'000);
  sim.set_fault_plan(plan);

  auto send = [&sim](const net::Address& src, const net::Address& dst) {
    sim.send(net::Packet{src, dst, to_bytes("x"), 0, "t"});
  };
  send("a", "b");                                   // t=0: before window
  sim.at(15'000, [&] { send("a", "b"); });          // inside: dropped
  sim.at(20'000, [&] { send("b", "a"); });          // inside (reverse): dropped
  sim.at(30'000, [&] { send("a", "b"); });          // window end is exclusive
  sim.run();

  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(a.received.size(), 0u);
  EXPECT_EQ(sim.fault_stats().partition_dropped, 2u);
}

TEST(Faults, CrashedPartyCannotSendOrReceive) {
  net::Simulator sim;
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  net::FaultPlan plan(1);
  plan.crash("b", 5'000, 20'000);
  sim.set_fault_plan(plan);

  // Sent pre-crash but *arriving* (t=10'000) inside the window: dropped at
  // delivery time.
  sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  // b tries to send while offline: dropped at send time.
  sim.at(10'000, [&] {
    sim.send(net::Packet{"b", "a", to_bytes("x"), 0, "t"});
  });
  // Arrives at 25'000, after b recovers: delivered.
  sim.at(15'000, [&] {
    sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  });
  sim.run();

  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(sim.fault_stats().offline_dropped, 2u);
}

TEST(Faults, BreachFiresHandlerOnceAtScheduledTime) {
  net::Simulator sim;
  Sink a("a");
  sim.add_node(a);
  std::vector<std::pair<net::Address, net::Time>> fired;
  sim.set_breach_handler([&](const net::BreachEvent& e) {
    fired.emplace_back(e.party, sim.now());
  });
  net::FaultPlan plan(1);
  plan.breach("a", 5'000);
  plan.breach("a", 9'000);  // second breach of the same party: ignored
  sim.set_fault_plan(plan);
  sim.run();

  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, "a");
  EXPECT_EQ(fired[0].second, 5'000u);
  EXPECT_TRUE(sim.is_breached("a"));
  EXPECT_FALSE(sim.is_breached("b"));
  EXPECT_EQ(sim.breached_at("a"), 5'000u);
  EXPECT_EQ(sim.fault_stats().breaches_fired, 1u);
}

// The determinism contract: a fixed (workload, plan) pair replays
// bit-identically — same delivery trace, same fault counters, same metrics
// snapshot.
TEST(Faults, FixedSeedPlanReplaysBitIdentically) {
  auto run_once = [](obs::Registry& reg, std::vector<net::TraceEntry>& trace,
                     net::FaultStats& stats, std::uint64_t seed) {
    net::Simulator sim;
    Sink a("a"), b("b"), c("c");
    sim.add_node(a);
    sim.add_node(b);
    sim.add_node(c);
    sim.set_metrics(reg);
    net::FaultPlan plan(seed);
    plan.impair(net::Impairment{0.15, 0.15, 0.5, 3'000});
    plan.partition("a", "c", 40'000, 60'000);
    sim.set_fault_plan(plan);
    for (int i = 0; i < 100; ++i) {
      sim.at(static_cast<net::Time>(i) * 1'000, [&sim, i] {
        Bytes payload{static_cast<std::uint8_t>(i)};
        sim.send(net::Packet{"a", "b", payload, 0, "t"});
        sim.send(net::Packet{"a", "c", payload, 0, "t"});
      });
    }
    sim.run();
    trace = sim.trace();
    stats = sim.fault_stats();
  };

  obs::Registry reg1, reg2;
  std::vector<net::TraceEntry> t1, t2;
  net::FaultStats s1, s2;
  run_once(reg1, t1, s1, 99);
  run_once(reg2, t2, s2, 99);

  EXPECT_EQ(s1, s2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].time, t2[i].time) << "entry " << i;
    EXPECT_EQ(t1[i].src, t2[i].src) << "entry " << i;
    EXPECT_EQ(t1[i].dst, t2[i].dst) << "entry " << i;
    EXPECT_EQ(t1[i].size, t2[i].size) << "entry " << i;
    EXPECT_EQ(t1[i].context, t2[i].context) << "entry " << i;
  }
  obs::JsonWriter w1, w2;
  reg1.write_json(w1);
  reg2.write_json(w2);
  EXPECT_EQ(w1.str(), w2.str());

  // Sanity: the plan actually injected faults in this workload.
  EXPECT_GT(s1.lost + s1.duplicated + s1.jittered + s1.partition_dropped, 0u);

  // A different seed draws a different fault sequence.
  obs::Registry reg3;
  std::vector<net::TraceEntry> t3;
  net::FaultStats s3;
  run_once(reg3, t3, s3, 100);
  EXPECT_FALSE(s1 == s3 && t1.size() == t3.size());
}

// Regression: delivery_latency_us used to be observed at schedule time, so
// packets later dropped by a crash window still contributed samples. The
// histogram must count only actual deliveries.
TEST(Faults, OfflineDroppedPacketsLeaveLatencyHistogramUnchanged) {
  net::Simulator sim;
  obs::Registry reg;
  sim.set_metrics(reg);
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  net::FaultPlan plan(1);
  plan.crash("b", 5'000, 20'000);
  sim.set_fault_plan(plan);

  // Arrives at 10'000, inside the crash window: dropped at delivery time.
  sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  // Arrives at 25'000, after recovery: delivered.
  sim.at(15'000, [&] {
    sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
  });
  sim.run();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim.fault_stats().offline_dropped, 1u);
  const auto& hist = reg.histogram("delivery_latency_us");
  EXPECT_EQ(hist.count(), 1u);  // the dropped packet contributed no sample
  EXPECT_EQ(hist.min(), 10'000.0);
  EXPECT_EQ(hist.max(), 10'000.0);
}

// Regression: a plan installed mid-run with an already-elapsed breach time
// used to throw "time in the past" from Simulator::at. Elapsed times are
// clamped to fire immediately; future ones fire on schedule.
TEST(Faults, MidRunPlanInstallClampsElapsedBreachTimes) {
  net::Simulator sim;
  std::vector<std::pair<net::Address, net::Time>> fired;
  sim.set_breach_handler([&](const net::BreachEvent& e) {
    fired.emplace_back(e.party, sim.now());
  });
  sim.at(50'000, [&] {
    net::FaultPlan plan(1);
    plan.breach("early", 10'000);  // already elapsed at install time
    plan.breach("late", 80'000);
    sim.set_fault_plan(plan);
  });
  sim.run();

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first, "early");
  EXPECT_EQ(fired[0].second, 50'000u);  // clamped to install time
  EXPECT_EQ(fired[1].first, "late");
  EXPECT_EQ(fired[1].second, 80'000u);
  EXPECT_EQ(sim.breached_at("early"), 50'000u);
}

// Pins the documented roll-consumption contract: per surviving packet the
// order is loss -> duplicate -> jitter -> duplicate-jitter, a lost packet
// consumes exactly one roll, and each hit jitter roll draws one extra delay
// value. An oracle replaying the same seeded RNG by that recipe must land on
// the exact same FaultStats — two plans differing in one knob diverge, so a
// reordered implementation cannot pass by accident.
TEST(Faults, RollConsumptionOrderMatchesDocumentedContract) {
  constexpr int kSends = 200;
  const auto oracle = [](const net::Impairment& imp, std::uint64_t seed) {
    XoshiroRng rng(seed);
    net::FaultStats stats;
    for (int i = 0; i < kSends; ++i) {
      if (imp.loss > 0 && rng.unit() < imp.loss) {
        ++stats.lost;
        continue;  // a lost packet consumes exactly one roll
      }
      bool duplicated = false;
      if (imp.duplicate > 0 && rng.unit() < imp.duplicate) duplicated = true;
      if (imp.jitter > 0 && rng.unit() < imp.jitter) {
        if (imp.jitter_max_us) rng.below(imp.jitter_max_us + 1);
        ++stats.jittered;
      }
      if (duplicated && imp.jitter > 0 && rng.unit() < imp.jitter) {
        if (imp.jitter_max_us) rng.below(imp.jitter_max_us + 1);
      }
      if (duplicated) ++stats.duplicated;
    }
    return stats;
  };
  const auto simulate = [](const net::Impairment& imp, std::uint64_t seed) {
    net::Simulator sim;
    Sink a("a"), b("b");
    sim.add_node(a);
    sim.add_node(b);
    net::FaultPlan plan(seed);
    plan.impair(imp);
    sim.set_fault_plan(plan);
    for (int i = 0; i < kSends; ++i) {
      sim.send(net::Packet{"a", "b", to_bytes("x"), 0, "t"});
    }
    sim.run();
    return sim.fault_stats();
  };

  const net::Impairment base{0.3, 0.0, 0.4, 2'000};
  const net::Impairment with_dup{0.3, 0.5, 0.4, 2'000};
  const net::FaultStats base_stats = simulate(base, 7);
  const net::FaultStats dup_stats = simulate(with_dup, 7);
  EXPECT_EQ(base_stats, oracle(base, 7));
  EXPECT_EQ(dup_stats, oracle(with_dup, 7));
  // Turning on duplication interleaves extra rolls into the same stream, so
  // the two runs must not coincide.
  EXPECT_FALSE(base_stats == dup_stats);
  EXPECT_GT(dup_stats.duplicated, 0u);
  EXPECT_GT(base_stats.lost, 0u);
  EXPECT_GT(base_stats.jittered, 0u);
}

// ---------------------------------------------------------------------------
// Breach + observation-layer integration (§3.3 live implant).
// ---------------------------------------------------------------------------

TEST(Faults, LiveBreachSeesOnlyThePostCompromiseSuffix) {
  using namespace systems::mpr;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("origin.example", core::benign_identity("addr:origin.example"));
  book.set("vpn.example", core::benign_identity("addr:vpn.example"));
  book.set("10.0.7.1", core::sensitive_identity("user:early", "network"));
  book.set("10.0.7.2", core::sensitive_identity("user:late", "network"));

  SecureOrigin origin(
      "origin.example",
      [](const http::Request& req) {
        http::Response resp;
        resp.body = to_bytes("ok " + req.path);
        return resp;
      },
      log, book, 1);
  VpnServer vpn("vpn.example", log, book, 99);
  Client early("10.0.7.1", "user:early", log, 11);
  Client late("10.0.7.2", "user:late", log, 12);
  sim.add_node(origin);
  sim.add_node(vpn);
  sim.add_node(early);
  sim.add_node(late);

  sim.set_breach_handler([&log](const net::BreachEvent& e) {
    log.mark_compromised(e.party);
  });
  net::FaultPlan plan(5);
  plan.breach("vpn.example", 300'000);
  sim.set_fault_plan(plan);

  RelayInfo tunnel{"vpn.example", vpn.key().public_key};
  http::Request req;
  req.authority = "origin.example";
  req.path = "/page";
  early.fetch_via_vpn(req, tunnel, "origin.example", origin.key().public_key,
                      sim, nullptr);
  sim.at(600'000, [&] {
    late.fetch_via_vpn(req, tunnel, "origin.example",
                       origin.key().public_key, sim, nullptr);
  });
  sim.run();

  core::DecouplingAnalysis a(log);
  // Stored-logs model: both users' (identity, destination) pairs.
  EXPECT_EQ(a.breach("vpn.example").coupled_records, 2u);
  // Live implant planted mid-run: only the post-breach user is exposed.
  EXPECT_EQ(a.live_breach("vpn.example").coupled_records, 1u);
  EXPECT_TRUE(sim.is_breached("vpn.example"));
  EXPECT_EQ(sim.breached_at("vpn.example"), 300'000u);
}

// ---------------------------------------------------------------------------
// Property: under any seeded plan with loss < 1, a reliable flow completes
// or reports a typed error — it never hangs, and the decoupling verdict
// never degrades (faults remove or duplicate observations; they cannot
// create a coupling).
// ---------------------------------------------------------------------------

TEST(Faults, SeededPlansCompleteOrFailTypedNeverHang) {
  using namespace systems::ohttp;
  const double losses[] = {0.05, 0.2, 0.5, 0.9};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const double loss = losses[seed % 4];
    net::Simulator sim;
    core::ObservationLog log;
    core::AddressBook book;
    book.set("web.example", core::benign_identity("addr:web.example"));
    book.set("gw.example", core::benign_identity("addr:gw.example"));
    book.set("relay.example", core::benign_identity("addr:relay.example"));

    OriginServer origin(
        "web.example",
        [](const http::Request& req) {
          http::Response resp;
          resp.body = to_bytes("page " + req.path);
          return resp;
        },
        log, book);
    Gateway gateway("gw.example", log, book, 1);
    gateway.add_origin("web.example", "web.example");
    Relay relay("relay.example", "gw.example", log, book);
    sim.add_node(origin);
    sim.add_node(gateway);
    sim.add_node(relay);

    std::vector<std::unique_ptr<Client>> clients;
    std::vector<core::Party> users;
    for (int i = 0; i < 2; ++i) {
      std::string addr = "10.0.5." + std::to_string(i + 1);
      book.set(addr, core::sensitive_identity(
                         "user:p" + std::to_string(i), "network"));
      users.push_back(addr);
      clients.push_back(std::make_unique<Client>(
          addr, "user:p" + std::to_string(i), "relay.example",
          gateway.key().public_key, log, 100 * seed + i));
      sim.add_node(*clients.back());
    }

    net::FaultPlan plan(seed);
    plan.impair(net::Impairment{loss, 0.1, 0.3, 8'000});
    sim.set_fault_plan(plan);

    systems::RetryPolicy policy;
    policy.max_attempts = 5;
    int callbacks = 0, completed = 0, typed_errors = 0;
    for (auto& c : clients) {
      for (int r = 0; r < 2; ++r) {
        http::Request req;
        req.authority = "web.example";
        req.path = "/seed" + std::to_string(seed) + "/r" + std::to_string(r);
        c->fetch_reliable(req, sim, policy,
                          [&](Result<http::Response> result) {
                            ++callbacks;
                            result.ok() ? ++completed : ++typed_errors;
                          });
      }
    }
    const net::Time end = sim.run();

    // Every flow resolved one way or the other, at bounded virtual time.
    EXPECT_EQ(callbacks, 4) << "seed " << seed << " loss " << loss;
    EXPECT_EQ(completed + typed_errors, 4);
    EXPECT_LT(end, 60'000'000u) << "seed " << seed;
    // Faults never manufacture a coupling.
    core::DecouplingAnalysis a(log);
    EXPECT_TRUE(a.is_decoupled(users)) << "seed " << seed << " loss " << loss;
  }
}

// ---------------------------------------------------------------------------
// The eight paper systems (bench_tables T1-T8) at 5% loss / 20% jitter /
// 5% duplication: every workload still completes and derives the exact same
// knowledge tuples as its fault-free twin. Reliable entry points carry the
// request/response systems; blind repetition covers the rest.
// ---------------------------------------------------------------------------

/// Runs baseline and impaired twins and asserts identical tables.
void expect_tables_unchanged(
    testutil::SystemRun (*run)(const net::FaultPlan*), std::uint64_t seed) {
  testutil::SystemRun base = run(nullptr);
  net::FaultPlan plan = testutil::impaired_plan(seed);
  testutil::SystemRun imp = run(&plan);
  EXPECT_GT(imp.injected, 0u) << "plan injected nothing";
  EXPECT_EQ(base.decoupled, imp.decoupled);
  ASSERT_EQ(base.tuples.size(), imp.tuples.size());
  for (const auto& [party, tuple] : base.tuples) {
    auto it = imp.tuples.find(party);
    ASSERT_NE(it, imp.tuples.end()) << party;
    EXPECT_EQ(tuple, it->second) << "tuple changed under impairment: "
                                 << party;
  }
}

TEST(ImpairedTables, T1Ecash) {
  expect_tables_unchanged(testutil::run_ecash, 1001);
}
TEST(ImpairedTables, T2Mixnet) {
  expect_tables_unchanged(testutil::run_mixnet, 1002);
}
TEST(ImpairedTables, T3PrivacyPass) {
  expect_tables_unchanged(testutil::run_privacypass, 1003);
}
TEST(ImpairedTables, T4Odoh) { expect_tables_unchanged(testutil::run_odoh, 1004); }
TEST(ImpairedTables, T5Pgpp) { expect_tables_unchanged(testutil::run_pgpp, 1005); }
TEST(ImpairedTables, T6Mpr) { expect_tables_unchanged(testutil::run_mpr, 1006); }
TEST(ImpairedTables, T7Ppm) { expect_tables_unchanged(testutil::run_ppm, 1007); }
TEST(ImpairedTables, T8Vpn) {
  expect_tables_unchanged(testutil::run_vpn, 1008);
  // The cautionary tale stays coupled with and without faults.
  EXPECT_FALSE(testutil::run_vpn(nullptr).decoupled);
}

// ---------------------------------------------------------------------------
// Sharded engine: window faults are count-independent.
// ---------------------------------------------------------------------------

/// Replies to every packet with the same payload until a virtual-time cutoff,
/// keeping a conversation alive across the fault windows.
class Chatter final : public net::Node {
 public:
  Chatter(net::Address address, net::Time stop_at)
      : net::Node(std::move(address)), stop_at_(stop_at) {}

  void on_packet(const net::Packet& p, net::Simulator& sim) override {
    rx.push_back({sim.now(), p.src, to_string(p.payload)});
    if (sim.now() < stop_at_) {
      sim.send(net::Packet{address(), p.src, p.payload, p.context, "chat"});
    }
  }

  struct Rx {
    net::Time time;
    net::Address src;
    std::string payload;
    auto key() const { return std::tie(time, src, payload); }
    bool operator==(const Rx& o) const { return key() == o.key(); }
    bool operator<(const Rx& o) const { return key() < o.key(); }
  };
  std::vector<Rx> rx;

 private:
  net::Time stop_at_;
};

// A FaultPlan installed mid-run (partitions, a crash, and two breach
// implants) must produce the identical breach schedule, fault counters, and
// reception multiset whether the run is serial or split across 2 or 4
// worker shards. Window faults carry explicit virtual times, so unlike the
// per-shard stochastic impairment streams they are shard-count-independent.
TEST(FaultsSharded, MidRunPlanAndBreachImplantsMatchSerial) {
  constexpr net::Time kStop = 180'000;
  struct Outcome {
    std::vector<std::pair<net::Address, net::Time>> breaches;
    net::FaultStats stats;
    std::vector<Chatter::Rx> rx;  // sorted multiset over all nodes
    std::uint64_t packets = 0;
    net::Time end = 0;
  };
  const auto run_with = [&](std::uint32_t shards) {
    net::Simulator sim;
    std::vector<std::unique_ptr<Chatter>> nodes;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(
          std::make_unique<Chatter>("ping" + std::to_string(i), kStop));
      nodes.push_back(
          std::make_unique<Chatter>("pong" + std::to_string(i), kStop));
      sim.add_node(*nodes[nodes.size() - 2]);
      sim.add_node(*nodes[nodes.size() - 1]);
      if (shards > 1) {
        // Split each pair across shards so every reply crosses a boundary.
        sim.set_shard_affinity("ping" + std::to_string(i),
                               static_cast<std::uint32_t>(i));
        sim.set_shard_affinity("pong" + std::to_string(i),
                               static_cast<std::uint32_t>(i + 1));
      }
    }
    if (shards > 1) sim.set_shards(shards);

    Outcome out;
    sim.set_breach_handler([&](const net::BreachEvent& e) {
      out.breaches.emplace_back(e.party, sim.now());
    });
    for (int i = 0; i < 4; ++i) {
      sim.send(net::Packet{"ping" + std::to_string(i),
                           "pong" + std::to_string(i), to_bytes("hello"), 0,
                           "chat"},
               /*extra_delay=*/static_cast<net::Time>(i) * 500);
    }
    // Install the plan mid-run; every window/implant lies beyond the install
    // point plus one lookahead window, so barrier-quantized application in
    // the sharded engine sees exactly what the serial engine sees.
    sim.at(35'000, [&sim] {
      net::FaultPlan plan(1);
      plan.partition("ping1", "pong1", 60'000, 120'000);
      plan.crash("pong2", 70'000, 130'000);
      plan.breach("pong0", 90'000);
      plan.breach("ping3", 150'000);
      sim.set_fault_plan(plan);
    });
    out.end = sim.run();
    out.stats = sim.fault_stats();
    out.packets = sim.packets_delivered();
    for (const auto& n : nodes) {
      out.rx.insert(out.rx.end(), n->rx.begin(), n->rx.end());
    }
    std::sort(out.rx.begin(), out.rx.end());
    EXPECT_TRUE(sim.is_breached("pong0"));
    EXPECT_TRUE(sim.is_breached("ping3"));
    EXPECT_EQ(sim.breached_at("pong0"), 90'000u);
    EXPECT_EQ(sim.breached_at("ping3"), 150'000u);
    return out;
  };

  const Outcome serial = run_with(1);
  ASSERT_EQ(serial.breaches.size(), 2u);
  EXPECT_GT(serial.stats.partition_dropped, 0u);
  EXPECT_GT(serial.stats.offline_dropped, 0u);
  EXPECT_EQ(serial.stats.breaches_fired, 2u);
  for (std::uint32_t shards : {2u, 4u}) {
    const Outcome sharded = run_with(shards);
    EXPECT_EQ(sharded.breaches, serial.breaches) << "shards=" << shards;
    EXPECT_EQ(sharded.stats, serial.stats) << "shards=" << shards;
    EXPECT_EQ(sharded.rx, serial.rx) << "shards=" << shards;
    EXPECT_EQ(sharded.packets, serial.packets) << "shards=" << shards;
    EXPECT_EQ(sharded.end, serial.end) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace dcpl
