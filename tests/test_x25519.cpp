// X25519 vectors from RFC 7748 §5.2 and §6.1.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/csprng.hpp"
#include "crypto/x25519.hpp"

namespace dcpl::crypto {
namespace {

TEST(X25519, Rfc7748Vector1) {
  Bytes scalar = from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  Bytes u = from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(to_hex(x25519(scalar, u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  Bytes scalar = from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  Bytes u = from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(to_hex(x25519(scalar, u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 §6.1 Diffie-Hellman vectors.
TEST(X25519, Rfc7748DiffieHellman) {
  Bytes alice_priv = from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  Bytes bob_priv = from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  Bytes alice_pub = x25519_public(alice_priv);
  Bytes bob_pub = x25519_public(bob_priv);
  EXPECT_EQ(to_hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  auto k1 = x25519_shared(alice_priv, bob_pub);
  auto k2 = x25519_shared(bob_priv, alice_pub);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(k1.value(), k2.value());
  EXPECT_EQ(to_hex(k1.value()),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedSecretAgreesForRandomKeys) {
  ChaChaRng rng(4242);
  for (int i = 0; i < 8; ++i) {
    auto a = X25519KeyPair::generate(rng);
    auto b = X25519KeyPair::generate(rng);
    auto k1 = x25519_shared(a.private_key, b.public_key);
    auto k2 = x25519_shared(b.private_key, a.public_key);
    ASSERT_TRUE(k1.ok());
    ASSERT_TRUE(k2.ok());
    EXPECT_EQ(k1.value(), k2.value());
  }
}

TEST(X25519, RejectsLowOrderPoint) {
  ChaChaRng rng(1);
  auto kp = X25519KeyPair::generate(rng);
  Bytes zero_point(32, 0);  // order-1 point -> all-zero shared secret
  EXPECT_FALSE(x25519_shared(kp.private_key, zero_point).ok());
  Bytes one_point(32, 0);
  one_point[0] = 1;  // order-2 point u=1? (u=1 is on the twist, low order)
  // x25519(k, 1) yields zero for low-order inputs only; for u=1 the result
  // is well-defined and nonzero, so just check the call does not throw.
  (void)x25519(kp.private_key, one_point);
}

TEST(X25519, ClampingIgnoresStrayBits) {
  ChaChaRng rng(2);
  Bytes sk = rng.bytes(32);
  Bytes sk2 = sk;
  sk2[0] |= 0x07;   // low bits are cleared by clamping
  sk2[31] |= 0x80;  // top bit is cleared by clamping
  Bytes sk3 = sk;
  sk3[0] &= 0xf8;
  sk3[31] = static_cast<std::uint8_t>((sk3[31] & 0x7f) | 0x40);
  EXPECT_EQ(x25519_public(sk3), x25519_public(sk3));
  // clamp(sk2) == clamp(sk) iff their clamped forms agree.
  Bytes c1 = sk, c2 = sk2;
  for (Bytes* c : {&c1, &c2}) {
    (*c)[0] &= 248;
    (*c)[31] = static_cast<std::uint8_t>(((*c)[31] & 127) | 64);
  }
  if (c1 == c2) {
    EXPECT_EQ(x25519_public(sk), x25519_public(sk2));
  }
}

TEST(X25519, RejectsWrongInputSizes) {
  EXPECT_THROW(x25519(Bytes(31), Bytes(32)), std::invalid_argument);
  EXPECT_THROW(x25519(Bytes(32), Bytes(33)), std::invalid_argument);
}

TEST(X25519, DeriveIsDeterministic) {
  auto a = X25519KeyPair::derive(to_bytes("seed-material"));
  auto b = X25519KeyPair::derive(to_bytes("seed-material"));
  EXPECT_EQ(a.private_key, b.private_key);
  EXPECT_EQ(a.public_key, b.public_key);
  auto c = X25519KeyPair::derive(to_bytes("other"));
  EXPECT_NE(a.public_key, c.public_key);
}


// RFC 7748 §5.2 iterated vector: k = X25519(k, u); u = old k.
TEST(X25519, Rfc7748IteratedVector) {
  Bytes k = from_hex(
      "0900000000000000000000000000000000000000000000000000000000000000");
  Bytes u = k;
  for (int i = 0; i < 1; ++i) {
    Bytes next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(to_hex(k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

TEST(X25519, Rfc7748IteratedVector1000) {
  Bytes k = from_hex(
      "0900000000000000000000000000000000000000000000000000000000000000");
  Bytes u = k;
  for (int i = 0; i < 1000; ++i) {
    Bytes next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(to_hex(k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

}  // namespace
}  // namespace dcpl::crypto
