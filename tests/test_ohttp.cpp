// Oblivious HTTP end-to-end: correctness plus the derived knowledge tuples.
#include "systems/ohttp/ohttp.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::ohttp {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<OriginServer> origin;
  std::unique_ptr<Gateway> gateway;
  std::unique_ptr<Relay> relay;
  std::vector<std::unique_ptr<Client>> clients;

  explicit Fixture(std::size_t n_clients = 1) {
    book.set("relay.example", core::benign_identity("addr:relay.example"));
    book.set("gateway.example", core::benign_identity("addr:gateway.example"));
    book.set("origin.example", core::benign_identity("addr:origin.example"));

    origin = std::make_unique<OriginServer>(
        "origin.example",
        [](const http::Request& req) {
          http::Response resp;
          resp.status = 200;
          resp.body = to_bytes("content of " + req.path);
          return resp;
        },
        log, book);
    gateway = std::make_unique<Gateway>("gateway.example", log, book, 1);
    gateway->add_origin("origin.example", "origin.example");
    relay = std::make_unique<Relay>("relay.example", "gateway.example", log,
                                    book);
    sim.add_node(*origin);
    sim.add_node(*gateway);
    sim.add_node(*relay);

    for (std::size_t i = 0; i < n_clients; ++i) {
      std::string addr = "10.0.0." + std::to_string(i + 1);
      std::string user = "user:client" + std::to_string(i);
      book.set(addr, core::sensitive_identity(user, "network"));
      clients.push_back(std::make_unique<Client>(
          addr, user, "relay.example", gateway->key().public_key, log,
          100 + i));
      sim.add_node(*clients.back());
    }
  }

  http::Request request(const std::string& path) {
    http::Request req;
    req.authority = "origin.example";
    req.path = path;
    return req;
  }
};

TEST(Ohttp, EndToEndFetch) {
  Fixture f;
  std::string body;
  f.clients[0]->fetch(f.request("/page"), f.sim,
                      [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "content of /page");
  EXPECT_EQ(f.origin->requests_served(), 1u);
  EXPECT_EQ(f.relay->forwarded(), 1u);
  EXPECT_EQ(f.clients[0]->responses_received(), 1u);
}

TEST(Ohttp, ManyClientsManyRequests) {
  Fixture f(5);
  int answered = 0;
  for (int round = 0; round < 4; ++round) {
    for (auto& c : f.clients) {
      c->fetch(f.request("/r" + std::to_string(round)), f.sim,
               [&](const http::Response&) { ++answered; });
    }
  }
  f.sim.run();
  EXPECT_EQ(answered, 20);
  EXPECT_EQ(f.origin->requests_served(), 20u);
}

// The paper's §3.2.5-style OHTTP analysis: relay (▲, ⊙), gateway (△, ●).
TEST(Ohttp, DerivedTuplesMatchDecouplingPrinciple) {
  Fixture f;
  f.clients[0]->fetch(f.request("/secret-search"), f.sim, nullptr);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.0.0.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("relay.example").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("gateway.example").to_string(), "(△, ●)");
  EXPECT_EQ(a.tuple_for("origin.example").to_string(), "(△, ●)");
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
}

TEST(Ohttp, RelayNeverObservesPlaintext) {
  Fixture f;
  f.clients[0]->fetch(f.request("/needle-path"), f.sim, nullptr);
  f.sim.run();
  for (const auto& obs : f.log.for_party("relay.example")) {
    EXPECT_EQ(obs.atom.label.find("needle"), std::string::npos);
    EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveData);
  }
}

TEST(Ohttp, GatewayNeverSeesClientAddress) {
  Fixture f;
  f.clients[0]->fetch(f.request("/x"), f.sim, nullptr);
  f.sim.run();
  for (const auto& obs : f.log.for_party("gateway.example")) {
    EXPECT_EQ(obs.atom.label.find("10.0.0.1"), std::string::npos);
    EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveIdentity);
  }
}

TEST(Ohttp, BreachAnySinglePartyDoesNotCouple) {
  Fixture f;
  f.clients[0]->fetch(f.request("/x"), f.sim, nullptr);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  for (const char* p : {"relay.example", "gateway.example", "origin.example"}) {
    EXPECT_FALSE(a.breach(p).coupled()) << p;
  }
  // But relay + gateway colluding re-couple (shared linkage context chain).
  EXPECT_TRUE(a.coalition_recouples({"relay.example", "gateway.example"}));
}

TEST(Ohttp, UnknownAuthorityIsDropped) {
  Fixture f;
  http::Request req;
  req.authority = "unknown.example";
  bool called = false;
  f.clients[0]->fetch(req, f.sim, [&](const http::Response&) { called = true; });
  f.sim.run();
  EXPECT_FALSE(called);
  EXPECT_EQ(f.origin->requests_served(), 0u);
}

TEST(Ohttp, GarbageToGatewayIsDropped) {
  Fixture f;
  f.sim.send(net::Packet{"10.0.0.1", "gateway.example", Bytes(64, 0xaa),
                         f.sim.new_context(), "ohttp"});
  f.sim.run();
  EXPECT_EQ(f.origin->requests_served(), 0u);
}

TEST(Ohttp, TamperedCiphertextNeverReachesOrigin) {
  Fixture f;
  // Tamper with everything the relay forwards.
  struct Tamperer final : net::Node {
    net::Address gw;
    explicit Tamperer(net::Address a, net::Address g)
        : Node(std::move(a)), gw(std::move(g)) {}
    void on_packet(const net::Packet& p, net::Simulator& sim) override {
      Bytes corrupted = p.payload;
      if (!corrupted.empty()) corrupted[corrupted.size() / 2] ^= 0xff;
      sim.send(net::Packet{address(), gw, corrupted, p.context, p.protocol});
    }
  } tamperer("evil-relay.example", "gateway.example");
  f.sim.add_node(tamperer);

  Client client("10.9.9.9", "user:victim", "evil-relay.example",
                f.gateway->key().public_key, f.log, 7);
  f.sim.add_node(client);
  client.fetch(f.request("/x"), f.sim, nullptr);
  f.sim.run();
  EXPECT_EQ(f.origin->requests_served(), 0u);
}

TEST(Ohttp, ResponsesRoutedToCorrectClient) {
  Fixture f(3);
  std::vector<std::string> bodies(3);
  for (int i = 0; i < 3; ++i) {
    f.clients[i]->fetch(f.request("/client" + std::to_string(i)), f.sim,
                        [&bodies, i](const http::Response& r) {
                          bodies[i] = to_string(r.body);
                        });
  }
  f.sim.run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(bodies[i], "content of /client" + std::to_string(i));
  }
}


TEST(Ohttp, PaddingDefeatsRequestSizeFingerprinting) {
  Fixture f(2);
  f.clients[0]->set_padding_bucket(256);
  f.clients[1]->set_padding_bucket(256);

  std::vector<std::size_t> wire_sizes;
  f.sim.add_wiretap([&](const net::TraceEntry& e) {
    // Client->relay legs only (the gateway's responses also target the
    // relay; exclude them).
    if (e.dst == "relay.example" && e.src.starts_with("10.0.0.")) {
      wire_sizes.push_back(e.size);
    }
  });

  int got = 0;
  f.clients[0]->fetch(f.request("/a"), f.sim,
                      [&](const http::Response&) { ++got; });
  f.clients[1]->fetch(f.request("/a-much-longer-path-name-here"), f.sim,
                      [&](const http::Response&) { ++got; });
  f.sim.run();

  EXPECT_EQ(got, 2);  // padded requests still served correctly
  ASSERT_EQ(wire_sizes.size(), 2u);
  EXPECT_EQ(wire_sizes[0], wire_sizes[1]);  // identical on the wire
}

TEST(Ohttp, UnpaddedClientsStillWork) {
  Fixture f;
  std::string body;
  f.clients[0]->fetch(f.request("/plain"), f.sim,
                      [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "content of /plain");
}


TEST(OhttpKeys, KeyConfigEncodeDecodeRoundTrip) {
  Fixture f;
  KeyConfig config = f.gateway->key_config();
  EXPECT_EQ(config.public_key, f.gateway->key().public_key);
  auto decoded = KeyConfig::decode(config.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->key_id, config.key_id);
  EXPECT_EQ(decoded->kem_id, hpke::kKemId);
  EXPECT_EQ(decoded->public_key, config.public_key);
  EXPECT_FALSE(KeyConfig::decode(Bytes(2)).ok());
  Bytes bad = config.encode();
  bad[1] ^= 0xff;  // unsupported KEM id
  EXPECT_FALSE(KeyConfig::decode(bad).ok());
}

TEST(OhttpKeys, RotationKeepsOldClientsWorkingDuringGrace) {
  Fixture f;
  Bytes old_key = f.gateway->key().public_key;
  f.gateway->rotate_key();
  EXPECT_EQ(f.gateway->active_keys(), 2u);
  EXPECT_NE(f.gateway->key().public_key, old_key);

  // The fixture's client still holds the OLD key: grace window serves it.
  std::string body;
  f.clients[0]->fetch(f.request("/old-config"), f.sim,
                      [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "content of /old-config");

  // A client on the NEW config works too.
  Client fresh("10.0.9.9", "user:fresh", "relay.example",
               f.gateway->key_config().public_key, f.log, 77);
  f.sim.add_node(fresh);
  body.clear();
  fresh.fetch(f.request("/new-config"), f.sim,
              [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "content of /new-config");
}

TEST(OhttpKeys, RetiringOldKeysCutsOffStaleClients) {
  Fixture f;
  f.gateway->rotate_key();
  f.gateway->retire_old_keys();
  EXPECT_EQ(f.gateway->active_keys(), 1u);
  bool called = false;
  f.clients[0]->fetch(f.request("/x"), f.sim,
                      [&](const http::Response&) { called = true; });
  f.sim.run();
  EXPECT_FALSE(called);  // old key no longer accepted
  EXPECT_EQ(f.origin->requests_served(), 0u);
}

TEST(OhttpKeys, KeyIdsIncrementAcrossRotations) {
  Fixture f;
  const std::uint8_t first = f.gateway->key_config().key_id;
  f.gateway->rotate_key();
  EXPECT_EQ(f.gateway->key_config().key_id, first + 1);
}

}  // namespace
}  // namespace dcpl::systems::ohttp
