// System-level sharded run: the full OHTTP stack (clients, relay, gateway,
// origin — real HPKE crypto, zero-copy forwards) spread across shards with
// per-node observation logs, so the only shared mutable state is the
// engine's own. This is the tier the ThreadSanitizer CI job leans on: a
// data race anywhere in the mailbox/pool/metrics plumbing surfaces here
// under real protocol traffic, not just synthetic ping-pong.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/address_book.hpp"
#include "core/knowledge.hpp"
#include "core/observation.hpp"
#include "net/sim.hpp"
#include "systems/ohttp/ohttp.hpp"

namespace dcpl::systems {
namespace {

constexpr int kClients = 12;
constexpr int kRounds = 3;

/// One OHTTP estate where every party keeps its own ObservationLog, so
/// nodes can spread across shards without sharing a log.
struct Estate {
  net::Simulator sim;
  core::AddressBook book;
  std::vector<std::unique_ptr<core::ObservationLog>> logs;

  std::unique_ptr<ohttp::OriginServer> origin;
  std::unique_ptr<ohttp::Gateway> gateway;
  std::unique_ptr<ohttp::Relay> relay;
  std::vector<std::unique_ptr<ohttp::Client>> clients;

  core::ObservationLog& fresh_log() {
    logs.push_back(std::make_unique<core::ObservationLog>());
    return *logs.back();
  }

  Estate() {
    book.set("web.example", core::benign_identity("addr:web.example"));
    book.set("gw.example", core::benign_identity("addr:gw.example"));
    book.set("relay.example", core::benign_identity("addr:relay.example"));

    origin = std::make_unique<ohttp::OriginServer>(
        "web.example",
        [](const http::Request& req) {
          http::Response resp;
          resp.body = to_bytes("page " + req.path);
          return resp;
        },
        fresh_log(), book);
    gateway =
        std::make_unique<ohttp::Gateway>("gw.example", fresh_log(), book, 1);
    gateway->add_origin("web.example", "web.example");
    relay = std::make_unique<ohttp::Relay>("relay.example", "gw.example",
                                           fresh_log(), book);
    sim.add_node(*origin);
    sim.add_node(*gateway);
    sim.add_node(*relay);
    for (int i = 0; i < kClients; ++i) {
      const std::string addr = "10.0.0." + std::to_string(i + 1);
      const std::string label = "user:browser" + std::to_string(i);
      book.set(addr, core::sensitive_identity(label, "network"));
      clients.push_back(std::make_unique<ohttp::Client>(
          addr, label, "relay.example", gateway->key().public_key,
          fresh_log(), 100 + i));
      sim.add_node(*clients.back());
    }
  }

  /// Each client fetches kRounds pages, chaining the next fetch from the
  /// previous response callback so traffic keeps flowing mid-run.
  void run_workload() {
    for (int i = 0; i < kClients; ++i) {
      fetch_round(i, 0);
    }
    sim.run();
  }

  void fetch_round(int client, int round) {
    if (round >= kRounds) return;
    http::Request req;
    req.authority = "web.example";
    req.path = "/r" + std::to_string(round) + "/u" + std::to_string(client);
    clients[client]->fetch(req, sim, [this, client, round](
                                         const http::Response&) {
      fetch_round(client, round + 1);
    });
  }
};

TEST(SystemSharded, OhttpStackSpreadAcrossShardsMatchesSerial) {
  Estate serial;
  serial.run_workload();
  ASSERT_EQ(serial.origin->requests_served(),
            static_cast<std::size_t>(kClients * kRounds));

  for (std::uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    Estate sharded;
    sharded.sim.set_shards(shards);  // no affinity: nodes spread by id
    sharded.run_workload();

    EXPECT_EQ(sharded.origin->requests_served(),
              serial.origin->requests_served());
    EXPECT_EQ(sharded.relay->forwarded(), serial.relay->forwarded());
    for (int i = 0; i < kClients; ++i) {
      EXPECT_EQ(sharded.clients[i]->responses_received(),
                serial.clients[i]->responses_received())
          << "client " << i;
    }
    EXPECT_EQ(sharded.sim.packets_delivered(), serial.sim.packets_delivered());
    EXPECT_EQ(sharded.sim.bytes_delivered(), serial.sim.bytes_delivered());

    const net::Simulator::ShardRunStats& stats = sharded.sim.shard_stats();
    EXPECT_EQ(stats.shards, shards);
    std::uint64_t cross = 0;
    for (std::uint64_t c : stats.cross_sends) cross += c;
    EXPECT_GT(cross, 0u) << "workload never crossed a shard boundary";
  }
}

// Same OHTTP estate under set_auto_affinity(kMinCut): the partitioner
// places parties from the link table instead of id-modulo, and every
// serial-equivalence obligation still holds. Runs under the TSan CI job,
// so partitioner-driven placement gets race coverage on real traffic too.
TEST(SystemSharded, OhttpStackWithAutoAffinityMatchesSerial) {
  Estate serial;
  serial.run_workload();

  for (std::uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    Estate sharded;
    sharded.sim.set_shards(shards);
    sharded.sim.set_auto_affinity(net::Simulator::AffinityPolicy::kMinCut);
    sharded.run_workload();

    EXPECT_EQ(sharded.sim.shard_stats().policy,
              net::Simulator::AffinityPolicy::kMinCut);
    EXPECT_EQ(sharded.origin->requests_served(),
              serial.origin->requests_served());
    EXPECT_EQ(sharded.relay->forwarded(), serial.relay->forwarded());
    for (int i = 0; i < kClients; ++i) {
      EXPECT_EQ(sharded.clients[i]->responses_received(),
                serial.clients[i]->responses_received())
          << "client " << i;
    }
    EXPECT_EQ(sharded.sim.packets_delivered(), serial.sim.packets_delivered());
    EXPECT_EQ(sharded.sim.bytes_delivered(), serial.sim.bytes_delivered());
  }
}

TEST(SystemSharded, RepeatedShardedRunsAreBitStable) {
  auto digest = [](Estate& e) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ull;
      }
    };
    for (const net::TraceEntry& t : e.sim.trace()) {
      mix(t.time);
      mix(t.size);
      mix(t.context);
    }
    return h;
  };
  Estate first;
  first.sim.set_shards(4);
  first.run_workload();
  const std::uint64_t want = digest(first);
  for (int rep = 0; rep < 3; ++rep) {
    Estate again;
    again.sim.set_shards(4);
    again.run_workload();
    ASSERT_EQ(digest(again), want) << "rep " << rep;
  }
}

}  // namespace
}  // namespace dcpl::systems
