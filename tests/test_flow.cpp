// Tests for the knowledge-flow provenance ledger (obs::FlowLedger) and the
// online decoupling-invariant monitor (obs::DecouplingMonitor): causal
// chains across linked contexts, ring-buffer wraparound, idempotent dedup
// under duplicated deliveries, both monitor modes (stored logs vs. live
// implant), monitoring with the flight recorder switched off, and
// event-by-event fold equality against the end-state DecouplingAnalysis on
// a real system run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/observation.hpp"
#include "net/faults.hpp"
#include "net/sim.hpp"
#include "obs/flow.hpp"
#include "obs/json.hpp"
#include "systems/mpr/mpr.hpp"

namespace dcpl {
namespace {

using obs::DecouplingMonitor;
using obs::FlowCause;
using obs::FlowEvent;
using obs::FlowEventKind;
using obs::FlowLedger;

// ---- causal chains --------------------------------------------------------

TEST(FlowLedger, ChainsExposuresThroughLinkedContexts) {
  FlowLedger ledger;
  // user -> relay under ctx 1; relay re-keys to ctx 2 toward the origin.
  ledger.record_exposure("user", core::sensitive_identity("u:alice", ""), 1);
  ledger.record_exposure("relay", core::benign_data("ciphertext"), 1);
  ledger.record_link("relay", 1, 2);
  ledger.record_exposure("origin", core::sensitive_data("url:/x"), 2);

  EXPECT_EQ(ledger.exposures(), 3u);
  EXPECT_EQ(ledger.links(), 1u);
  EXPECT_EQ(ledger.events_recorded(), 4u);

  // The origin's exposure traces back through the link to the user.
  std::vector<FlowEvent> chain = ledger.chain_of(4);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].party, "origin");
  EXPECT_EQ(chain[0].hop_index, 1u);  // one link deep
  EXPECT_EQ(chain[1].kind, FlowEventKind::kLink);
  EXPECT_EQ(chain[2].party, "relay");
  EXPECT_EQ(chain[3].party, "user");
  EXPECT_EQ(chain[3].hop_index, 0u);
  EXPECT_EQ(chain[3].parent_id, 0u);
}

// ---- ring wraparound ------------------------------------------------------

TEST(FlowLedger, RingWraparoundKeepsNewestAndTruncatesChains) {
  FlowLedger ledger(4);
  for (int i = 0; i < 10; ++i) {
    ledger.record_exposure("p", core::benign_data("a" + std::to_string(i)), 1);
  }
  EXPECT_EQ(ledger.events_recorded(), 10u);
  EXPECT_EQ(ledger.size(), 4u);
  EXPECT_EQ(ledger.dropped(), 6u);

  std::vector<FlowEvent> events = ledger.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 7u);
  EXPECT_EQ(events.back().id, 10u);
  EXPECT_EQ(ledger.find(6), nullptr);   // wrapped away
  ASSERT_NE(ledger.find(7), nullptr);

  // The chain from the newest event stops at the oldest resident ancestor
  // instead of dereferencing overwritten slots.
  std::vector<FlowEvent> chain = ledger.chain_of(10);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.back().id, 7u);

  // The incremental fold is immune to the wrap: all ten atoms are in.
  EXPECT_TRUE(ledger.tuples().at("p").benign_data);
}

// ---- dedup under duplicated deliveries ------------------------------------

// A node that logs the same observation for every packet it receives; with
// a duplicate-everything fault plan the ledger must record the knowledge
// exactly once (a resend teaches the observer nothing new).
class EchoObserver : public net::Node {
 public:
  EchoObserver(std::string address, core::ObservationLog& log)
      : Node(std::move(address)), log_(&log) {}
  void on_packet(const net::Packet& p, net::Simulator&) override {
    ++deliveries_;
    log_->observe(address(), core::sensitive_data("payload:fixed"), p.context);
  }
  std::size_t deliveries() const { return deliveries_; }

 private:
  core::ObservationLog* log_;
  std::size_t deliveries_ = 0;
};

class SilentNode : public net::Node {
 public:
  using Node::Node;
  void on_packet(const net::Packet&, net::Simulator&) override {}
};

TEST(FlowLedger, DuplicatedDeliveryDoesNotDoubleCount) {
  net::Simulator sim;
  core::ObservationLog log;
  FlowLedger ledger;
  log.set_sink(&ledger);
  sim.set_flow(&ledger);

  net::FaultPlan plan(/*seed=*/7);
  plan.impair(net::Impairment{/*loss=*/0.0, /*duplicate=*/1.0,
                              /*jitter=*/0.0, /*jitter_max_us=*/0});
  sim.set_fault_plan(plan);

  EchoObserver server("server", log);
  SilentNode client("client");
  sim.add_node(server);
  sim.add_node(client);
  sim.send(net::Packet{"client", "server", Bytes(16), sim.new_context(),
                       "test"});
  sim.run();

  ASSERT_EQ(server.deliveries(), 2u);  // original + duplicate
  EXPECT_EQ(ledger.exposures(), 1u);
  EXPECT_EQ(ledger.deduped(), 1u);
  EXPECT_EQ(log.observations().size(), 2u);  // the raw log keeps both
}

// ---- monitor: stored-logs mode --------------------------------------------

TEST(DecouplingMonitorTest, StoredModeFiresOnceWithCausalChain) {
  FlowLedger ledger;
  DecouplingMonitor monitor;
  monitor.exempt(core::Party("user"));
  ledger.attach_monitor(&monitor);

  // The user holding both atoms is the normal state — never a violation.
  ledger.record_exposure("user", core::sensitive_identity("u:a", ""), 1);
  ledger.record_exposure("user", core::sensitive_data("url:/x"), 1);
  EXPECT_TRUE(monitor.violations().empty());

  // A provider completing (sensitive identity AND sensitive data) trips it
  // at the exact event that completed the pair.
  ledger.record_exposure("vpn", core::sensitive_identity("u:a", ""), 1);
  EXPECT_TRUE(monitor.violations().empty());
  ledger.record_exposure("vpn", core::sensitive_data("fqdn:x", ""), 1);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_TRUE(monitor.tripped("vpn"));

  const DecouplingMonitor::Violation& v = monitor.violations()[0];
  EXPECT_EQ(v.party, "vpn");
  EXPECT_EQ(v.event_id, 4u);
  EXPECT_EQ(v.cause, FlowCause::kProtocolStep);
  EXPECT_EQ(v.implant_event_id, 0u);
  ASSERT_FALSE(v.chain.empty());
  EXPECT_EQ(v.chain.front(), v.event_id);

  // Already fired: more sensitive observations do not re-fire.
  ledger.record_exposure("vpn", core::sensitive_data("fqdn:y", ""), 1);
  EXPECT_EQ(monitor.violations().size(), 1u);
}

// ---- monitor: live-implant mode -------------------------------------------

TEST(DecouplingMonitorTest, ImplantModeCountsOnlyPostCompromiseExposures) {
  FlowLedger ledger;
  DecouplingMonitor monitor(DecouplingMonitor::Mode::kLiveImplant);
  ledger.attach_monitor(&monitor);

  // Pre-implant traffic: the attacker is not there yet, nothing counts.
  ledger.record_exposure("vpn", core::sensitive_identity("u:a", ""), 1);
  ledger.record_exposure("vpn", core::sensitive_data("fqdn:x", ""), 1);
  EXPECT_EQ(monitor.counted_exposures(), 0u);
  EXPECT_TRUE(monitor.violations().empty());

  ledger.record_compromise("vpn", FlowCause::kBreachImplant);
  ASSERT_TRUE(ledger.compromise_event("vpn").has_value());
  // Repeated implants are no-ops.
  ledger.record_compromise("vpn", FlowCause::kBreachImplant);
  EXPECT_EQ(ledger.compromises(), 1u);

  // The implant resets the party's dedup set, so the same atoms observed
  // again post-compromise are fresh events in the attacker's frame — and
  // they trip the monitor, with the chain ending at the implant.
  ledger.record_exposure("vpn", core::sensitive_identity("u:a", ""), 2);
  ledger.record_exposure("vpn", core::sensitive_data("fqdn:x", ""), 2);
  ASSERT_EQ(monitor.violations().size(), 1u);

  const DecouplingMonitor::Violation& v = monitor.violations()[0];
  EXPECT_EQ(v.party, "vpn");
  EXPECT_NE(v.implant_event_id, 0u);
  ASSERT_GE(v.chain.size(), 2u);
  EXPECT_EQ(v.chain.back(), v.implant_event_id);
  const FlowEvent* implant = ledger.find(v.chain.back());
  ASSERT_NE(implant, nullptr);
  EXPECT_EQ(implant->kind, FlowEventKind::kCompromise);
  EXPECT_EQ(implant->cause, FlowCause::kBreachImplant);
}

TEST(DecouplingMonitorTest, ImplantModeIgnoresUnbreachedParties) {
  FlowLedger ledger;
  DecouplingMonitor monitor(DecouplingMonitor::Mode::kLiveImplant);
  ledger.attach_monitor(&monitor);

  ledger.record_exposure("vpn", core::sensitive_identity("u:a", ""), 1);
  ledger.record_exposure("vpn", core::sensitive_data("fqdn:x", ""), 1);
  ledger.record_exposure("relay", core::sensitive_identity("u:a", ""), 1);
  EXPECT_EQ(monitor.counted_exposures(), 0u);
  EXPECT_TRUE(monitor.violations().empty());
}

// ---- monitor with the flight recorder off ---------------------------------

TEST(DecouplingMonitorTest, FiresWithRecordingOff) {
  FlowLedger ledger;
  DecouplingMonitor monitor;
  ledger.attach_monitor(&monitor);
  ledger.set_recording(false);

  ledger.record_exposure("vpn", core::sensitive_identity("u:a", ""), 1);
  ledger.record_exposure("vpn", core::sensitive_data("fqdn:x", ""), 1);

  EXPECT_EQ(ledger.size(), 0u);  // nothing retained...
  EXPECT_EQ(ledger.events_recorded(), 2u);
  ASSERT_EQ(monitor.violations().size(), 1u);  // ...but the invariant ran
  const DecouplingMonitor::Violation& v = monitor.violations()[0];
  // No resident events to walk: the chain still names the tripping event.
  ASSERT_EQ(v.chain.size(), 1u);
  EXPECT_EQ(v.chain.front(), v.event_id);
  // The incremental fold survived too.
  EXPECT_TRUE(ledger.tuples().at("vpn").sensitive_identity);
  EXPECT_TRUE(ledger.tuples().at("vpn").sensitive_data);
}

// ---- fold equality on a real system run -----------------------------------

TEST(FlowLedger, FoldMatchesEndStateAnalysisOnVpnRun) {
  using namespace systems::mpr;
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("origin.example", core::benign_identity("addr:origin.example"));
  book.set("vpn.example", core::benign_identity("addr:vpn.example"));
  book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

  SecureOrigin origin(
      "origin.example",
      [](const http::Request&) { return http::Response{}; }, log, book, 1);
  VpnServer vpn("vpn.example", log, book, 99);
  Client client("10.0.0.1", "user:alice", log, 42);
  sim.add_node(origin);
  sim.add_node(vpn);
  sim.add_node(client);

  FlowLedger ledger;
  DecouplingMonitor monitor;
  monitor.exempt(core::Party("10.0.0.1"));
  ledger.attach_monitor(&monitor);
  log.set_sink(&ledger);
  sim.set_flow(&ledger);

  http::Request req;
  req.authority = "origin.example";
  req.path = "/page";
  client.fetch_via_vpn(req, RelayInfo{"vpn.example", vpn.key().public_key},
                       "origin.example", origin.key().public_key, sim,
                       nullptr);
  sim.run();

  // Event-by-event fold == end-state analysis, for every party.
  core::DecouplingAnalysis a(log);
  const auto& folded = ledger.tuples();
  for (const auto& party : a.parties()) {
    auto it = folded.find(party);
    ASSERT_NE(it, folded.end()) << party;
    EXPECT_EQ(it->second, a.tuple_for(party)) << party;
  }
  ASSERT_EQ(ledger.dropped(), 0u);
  EXPECT_EQ(obs::fold_tuples(ledger.events()), folded);

  // The VPN's (who, what) locus tripped the online monitor exactly once,
  // stamped with simulator virtual time and the delivery's protocol tag.
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].party, "vpn.example");
  const FlowEvent* trip = ledger.find(monitor.violations()[0].event_id);
  ASSERT_NE(trip, nullptr);
  EXPECT_GT(trip->virtual_time, 0u);
  EXPECT_EQ(trip->protocol, "vpn");
}

// ---- JSONL export ---------------------------------------------------------

TEST(FlowLedger, WritesParseableJsonl) {
  FlowLedger ledger;
  ledger.record_exposure("user", core::sensitive_identity("u:a", "network"),
                         1);
  ledger.record_exposure("relay", core::benign_data("blob"), 1);
  ledger.record_link("relay", 1, 2);
  ledger.record_compromise("relay", FlowCause::kBreachImplant);

  std::string out;
  ledger.write_jsonl(out, "test-run");
  ASSERT_FALSE(out.empty());

  std::size_t lines = 0, exposures = 0, links = 0, compromises = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    obs::JsonValue v;
    ASSERT_TRUE(obs::JsonParser::parse(out.substr(start, end - start), v));
    EXPECT_EQ(v.at("run").string, "test-run");
    EXPECT_GT(v.at("id").number, 0.0);
    const std::string& type = v.at("type").string;
    if (type == "exposure") {
      ++exposures;
      EXPECT_FALSE(v.at("symbol").string.empty());
      EXPECT_FALSE(v.at("label").string.empty());
    } else if (type == "link") {
      ++links;
      EXPECT_EQ(v.at("ctx_a").number, 1.0);
      EXPECT_EQ(v.at("ctx_b").number, 2.0);
    } else if (type == "compromise") {
      ++compromises;
      EXPECT_EQ(v.at("cause").string, "breach_implant");
    }
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(exposures, 2u);
  EXPECT_EQ(links, 1u);
  EXPECT_EQ(compromises, 1u);
}

// ---- ObservationSink wiring -----------------------------------------------

TEST(FlowLedger, ObservationLogSinkForwardsAndDedupsCompromise) {
  core::ObservationLog log;
  FlowLedger ledger;
  log.set_sink(&ledger);

  log.observe("p", core::sensitive_data("d"), 1);
  log.link("p", 1, 2);
  log.mark_compromised("p");
  log.mark_compromised("p");  // second mark: compromised_ already holds p

  EXPECT_EQ(ledger.exposures(), 1u);
  EXPECT_EQ(ledger.links(), 1u);
  EXPECT_EQ(ledger.compromises(), 1u);
}

}  // namespace
}  // namespace dcpl
