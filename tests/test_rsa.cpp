// RSA keygen/raw ops, EMSA-PSS, RSASSA-PSS, and blind signatures.
#include <gtest/gtest.h>

#include "crypto/blind_rsa.hpp"
#include "crypto/csprng.hpp"
#include "crypto/rsa.hpp"

namespace dcpl::crypto {
namespace {

// Key generation is the slow part; share one key across the suite.
const RsaPrivateKey& test_key() {
  static const RsaPrivateKey key = [] {
    ChaChaRng rng(0x5151);
    return rsa_generate(1024, rng);
  }();
  return key;
}

TEST(Rsa, KeyHasExpectedShape) {
  const auto& key = test_key();
  EXPECT_EQ(key.pub.modulus_bits(), 1024u);
  EXPECT_EQ(key.pub.e, BigInt(65537));
  EXPECT_EQ(key.p * key.q, key.pub.n);
  EXPECT_NE(key.p, key.q);
}

TEST(Rsa, RawRoundTrip) {
  const auto& key = test_key();
  ChaChaRng rng(1);
  for (int i = 0; i < 5; ++i) {
    BigInt m = BigInt::random_below(key.pub.n, rng);
    BigInt c = rsa_public_op(key.pub, m);
    EXPECT_EQ(rsa_private_op(key, c), m);
    // And the other direction (sign then verify).
    BigInt s = rsa_private_op(key, m);
    EXPECT_EQ(rsa_public_op(key.pub, s), m);
  }
}

TEST(Rsa, CrtMatchesPlainExponentiation) {
  const auto& key = test_key();
  ChaChaRng rng(2);
  BigInt c = BigInt::random_below(key.pub.n, rng);
  EXPECT_EQ(rsa_private_op(key, c), c.mod_exp(key.d, key.pub.n));
}

TEST(Rsa, RawOpsRejectOutOfRange) {
  const auto& key = test_key();
  EXPECT_THROW(rsa_public_op(key.pub, key.pub.n), std::invalid_argument);
  EXPECT_THROW(rsa_private_op(key, key.pub.n + BigInt(1)),
               std::invalid_argument);
}

TEST(Mgf1, KnownProperties) {
  // MGF1 output is deterministic, prefix-consistent, and length-exact.
  Bytes seed = to_bytes("seed");
  Bytes m40 = mgf1_sha256(seed, 40);
  Bytes m20 = mgf1_sha256(seed, 20);
  EXPECT_EQ(m40.size(), 40u);
  EXPECT_EQ(Bytes(m40.begin(), m40.begin() + 20), m20);
  EXPECT_NE(mgf1_sha256(to_bytes("seed2"), 40), m40);
  EXPECT_TRUE(mgf1_sha256(seed, 0).empty());
}

TEST(Pss, EncodeVerifyRoundTrip) {
  ChaChaRng rng(3);
  Bytes msg = to_bytes("attack at dawn");
  for (std::size_t em_bits : {1023u, 1024u, 2047u}) {
    Bytes em = pss_encode(msg, em_bits, rng);
    EXPECT_EQ(em.size(), (em_bits + 7) / 8);
    EXPECT_TRUE(pss_verify(msg, em, em_bits));
    EXPECT_FALSE(pss_verify(to_bytes("attack at dusk"), em, em_bits));
  }
}

TEST(Pss, VerifyRejectsMalformedEncodings) {
  ChaChaRng rng(4);
  Bytes msg = to_bytes("m");
  Bytes em = pss_encode(msg, 1023, rng);
  // Wrong trailer byte.
  Bytes bad = em;
  bad.back() = 0xcc;
  EXPECT_FALSE(pss_verify(msg, bad, 1023));
  // Flipped hash byte.
  bad = em;
  bad[em.size() - 2] ^= 1;
  EXPECT_FALSE(pss_verify(msg, bad, 1023));
  // Wrong length.
  EXPECT_FALSE(pss_verify(msg, BytesView(em).first(em.size() - 1), 1023));
  // Top bits not cleared.
  bad = em;
  bad[0] |= 0x80;
  EXPECT_FALSE(pss_verify(msg, bad, 1023));
}

TEST(Pss, SaltRandomizesEncoding) {
  ChaChaRng rng(5);
  Bytes msg = to_bytes("same message");
  Bytes em1 = pss_encode(msg, 1023, rng);
  Bytes em2 = pss_encode(msg, 1023, rng);
  EXPECT_NE(em1, em2);  // fresh salt each time
  EXPECT_TRUE(pss_verify(msg, em1, 1023));
  EXPECT_TRUE(pss_verify(msg, em2, 1023));
}

TEST(RsaPss, SignVerify) {
  const auto& key = test_key();
  ChaChaRng rng(6);
  Bytes msg = to_bytes("hello pss");
  Bytes sig = rsa_pss_sign(key, msg, rng);
  EXPECT_EQ(sig.size(), key.pub.modulus_bytes());
  EXPECT_TRUE(rsa_pss_verify(key.pub, msg, sig));
  EXPECT_FALSE(rsa_pss_verify(key.pub, to_bytes("hello PSS"), sig));
  Bytes bad = sig;
  bad[10] ^= 1;
  EXPECT_FALSE(rsa_pss_verify(key.pub, msg, bad));
  EXPECT_FALSE(rsa_pss_verify(key.pub, msg, Bytes(sig.size() - 1)));
}

TEST(RsaPss, VerifyRejectsSignatureGeN) {
  const auto& key = test_key();
  Bytes too_big = key.pub.n.to_bytes_be(key.pub.modulus_bytes());
  EXPECT_FALSE(rsa_pss_verify(key.pub, to_bytes("m"), too_big));
}

TEST(BlindRsa, FullProtocolRoundTrip) {
  const auto& key = test_key();
  ChaChaRng rng(7);
  Bytes msg = to_bytes("token-nonce-123");

  BlindingState state = blind(key.pub, msg, rng);
  EXPECT_EQ(state.blinded_message.size(), key.pub.modulus_bytes());

  auto blind_sig = blind_sign(key, state.blinded_message);
  ASSERT_TRUE(blind_sig.ok());

  auto sig = finalize(key.pub, msg, state, blind_sig.value());
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(blind_verify(key.pub, msg, sig.value()));
  EXPECT_FALSE(blind_verify(key.pub, to_bytes("token-nonce-124"), sig.value()));
}

TEST(BlindRsa, BlindedMessageHidesMessage) {
  // The same message blinded twice yields unrelated blinded values, and
  // neither equals the PSS encoding itself: the signer learns nothing.
  const auto& key = test_key();
  ChaChaRng rng(8);
  Bytes msg = to_bytes("the same message");
  BlindingState s1 = blind(key.pub, msg, rng);
  BlindingState s2 = blind(key.pub, msg, rng);
  EXPECT_NE(s1.blinded_message, s2.blinded_message);
}

TEST(BlindRsa, SignaturesFromDistinctBlindingsBothVerify) {
  const auto& key = test_key();
  ChaChaRng rng(9);
  Bytes msg = to_bytes("msg");
  BlindingState s1 = blind(key.pub, msg, rng);
  BlindingState s2 = blind(key.pub, msg, rng);
  auto sig1 = finalize(key.pub, msg, s1, blind_sign(key, s1.blinded_message).value());
  auto sig2 = finalize(key.pub, msg, s2, blind_sign(key, s2.blinded_message).value());
  ASSERT_TRUE(sig1.ok());
  ASSERT_TRUE(sig2.ok());
  EXPECT_TRUE(blind_verify(key.pub, msg, sig1.value()));
  EXPECT_TRUE(blind_verify(key.pub, msg, sig2.value()));
}

TEST(BlindRsa, ServerRejectsMalformedBlindedMessage) {
  const auto& key = test_key();
  EXPECT_FALSE(blind_sign(key, Bytes(7)).ok());
  Bytes too_big = key.pub.n.to_bytes_be(key.pub.modulus_bytes());
  EXPECT_FALSE(blind_sign(key, too_big).ok());
}

TEST(BlindRsa, FinalizeRejectsGarbageSignature) {
  const auto& key = test_key();
  ChaChaRng rng(10);
  Bytes msg = to_bytes("msg");
  BlindingState state = blind(key.pub, msg, rng);
  Bytes garbage(key.pub.modulus_bytes(), 0x41);
  EXPECT_FALSE(finalize(key.pub, msg, state, garbage).ok());
  EXPECT_FALSE(finalize(key.pub, msg, state, Bytes(3)).ok());
}

TEST(BlindRsa, WrongKeySignatureRejected) {
  const auto& key = test_key();
  ChaChaRng rng(11);
  RsaPrivateKey other = rsa_generate(512, rng);
  Bytes msg = to_bytes("msg");
  BlindingState state = blind(key.pub, msg, rng);
  auto sig = blind_sign(key, state.blinded_message);
  ASSERT_TRUE(sig.ok());
  auto fin = finalize(key.pub, msg, state, sig.value());
  ASSERT_TRUE(fin.ok());
  EXPECT_FALSE(blind_verify(other.pub, msg, fin.value()));
}

}  // namespace
}  // namespace dcpl::crypto
