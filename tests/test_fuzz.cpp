// Randomized robustness tests: every wire-format parser must fail
// gracefully (no crash, no throw at the trust boundary) for arbitrary
// bytes, truncations, and bit-flips of valid messages. Deterministic seeds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dns/message.hpp"
#include "http/message.hpp"
#include "crypto/csprng.hpp"
#include "systems/channel.hpp"

namespace dcpl {
namespace {

constexpr int kIterations = 500;

TEST(Fuzz, DnsMessageDecodeNeverCrashes) {
  XoshiroRng rng(1);
  for (int i = 0; i < kIterations; ++i) {
    Bytes junk = rng.bytes(rng.below(200));
    auto result = dns::Message::decode(junk);  // ok() either way, no crash
    if (result.ok()) {
      // If it parsed, re-encoding must not crash either.
      (void)result->encode();
    }
  }
}

TEST(Fuzz, DnsMessageBitFlips) {
  XoshiroRng rng(2);
  dns::Message m;
  m.id = 7;
  m.questions.push_back(
      dns::Question{"www.example.com", dns::RecordType::kA, dns::kClassIn});
  m.answers.push_back(dns::ResourceRecord{"www.example.com",
                                          dns::RecordType::kA, dns::kClassIn,
                                          60, dns::a_rdata("192.0.2.1")});
  Bytes enc = m.encode();
  for (int i = 0; i < kIterations; ++i) {
    Bytes mutated = enc;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    (void)dns::Message::decode(mutated);
  }
}

TEST(Fuzz, DnsNameDecompressionBombs) {
  XoshiroRng rng(3);
  // Random headers followed by pointer-heavy name data.
  for (int i = 0; i < kIterations; ++i) {
    Bytes msg(12, 0);
    msg[5] = 1;  // one question
    const std::size_t extra = 2 + rng.below(30);
    for (std::size_t j = 0; j < extra; ++j) {
      // Bias toward pointer bytes (0xc0..0xff).
      msg.push_back(static_cast<std::uint8_t>(0xc0 | rng.below(64)));
    }
    msg.push_back(0);
    msg.push_back(0);
    msg.push_back(1);
    msg.push_back(0);
    msg.push_back(1);
    (void)dns::Message::decode(msg);
  }
}

TEST(Fuzz, HttpRequestDecodeNeverCrashes) {
  XoshiroRng rng(4);
  for (int i = 0; i < kIterations; ++i) {
    (void)http::Request::decode_binary(rng.bytes(rng.below(300)));
    (void)http::Response::decode_binary(rng.bytes(rng.below(300)));
  }
}

TEST(Fuzz, HttpRequestBitFlips) {
  XoshiroRng rng(5);
  http::Request req;
  req.method = "POST";
  req.authority = "a.example";
  req.path = "/p";
  req.headers = {{"K", "V"}};
  req.body = Bytes(64, 0x42);
  Bytes enc = req.encode_binary();
  for (int i = 0; i < kIterations; ++i) {
    Bytes mutated = enc;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    auto result = http::Request::decode_binary(mutated);
    if (result.ok()) (void)result->encode_binary();
  }
}

TEST(Fuzz, ChannelOpenRequestNeverCrashes) {
  XoshiroRng rng(6);
  dcpl::crypto::ChaChaRng crng(6);
  auto kp = hpke::KeyPair::generate(crng);
  for (int i = 0; i < 100; ++i) {
    auto result =
        systems::open_request(kp, to_bytes("app"), rng.bytes(rng.below(200)));
    EXPECT_FALSE(result.ok());  // forgery essentially never verifies
  }
}

TEST(Fuzz, ChannelOpenResponseNeverCrashes) {
  XoshiroRng rng(7);
  Bytes key = rng.bytes(32);
  for (int i = 0; i < kIterations; ++i) {
    auto result = systems::open_response(key, rng.bytes(rng.below(100)));
    EXPECT_FALSE(result.ok());
  }
}

TEST(Fuzz, DnsRoundTripPropertyOnRandomValidMessages) {
  // Generate random *valid* messages; decode(encode(m)) must reproduce all
  // semantic fields.
  XoshiroRng rng(8);
  auto random_name = [&] {
    std::string name;
    const std::size_t labels = 1 + rng.below(4);
    for (std::size_t l = 0; l < labels; ++l) {
      if (l) name += '.';
      const std::size_t len = 1 + rng.below(10);
      for (std::size_t c = 0; c < len; ++c) {
        name += static_cast<char>('a' + rng.below(26));
      }
    }
    return name;
  };

  for (int i = 0; i < 100; ++i) {
    dns::Message m;
    m.id = static_cast<std::uint16_t>(rng.u64());
    m.is_response = rng.below(2);
    m.recursion_desired = rng.below(2);
    m.rcode = static_cast<dns::Rcode>(rng.below(4));
    const std::size_t qs = 1 + rng.below(3);
    for (std::size_t q = 0; q < qs; ++q) {
      m.questions.push_back(dns::Question{
          random_name(), dns::RecordType::kA, dns::kClassIn});
    }
    const std::size_t as = rng.below(4);
    for (std::size_t a = 0; a < as; ++a) {
      m.answers.push_back(dns::ResourceRecord{
          random_name(), dns::RecordType::kTxt, dns::kClassIn,
          static_cast<std::uint32_t>(rng.u64()),
          rng.bytes(rng.below(40))});
    }

    auto decoded = dns::Message::decode(m.encode());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    EXPECT_EQ(decoded->id, m.id);
    EXPECT_EQ(decoded->is_response, m.is_response);
    EXPECT_EQ(decoded->rcode, m.rcode);
    EXPECT_EQ(decoded->questions, m.questions);
    EXPECT_EQ(decoded->answers, m.answers);
  }
}

TEST(Fuzz, HttpRoundTripPropertyOnRandomValidMessages) {
  XoshiroRng rng(9);
  auto random_token = [&](std::size_t max_len) {
    std::string s;
    const std::size_t len = rng.below(max_len);
    for (std::size_t c = 0; c < len; ++c) {
      s += static_cast<char>('!' + rng.below(90));
    }
    return s;
  };

  for (int i = 0; i < 200; ++i) {
    http::Request req;
    req.method = random_token(8);
    req.authority = random_token(40);
    req.path = "/" + random_token(60);
    const std::size_t hs = rng.below(6);
    for (std::size_t h = 0; h < hs; ++h) {
      req.headers.emplace_back(random_token(12), random_token(30));
    }
    req.body = rng.bytes(rng.below(500));

    auto decoded = http::Request::decode_binary(req.encode_binary());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->method, req.method);
    EXPECT_EQ(decoded->authority, req.authority);
    EXPECT_EQ(decoded->path, req.path);
    EXPECT_EQ(decoded->headers, req.headers);
    EXPECT_EQ(decoded->body, req.body);
  }
}

}  // namespace
}  // namespace dcpl
