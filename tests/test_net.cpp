// Discrete-event simulator: ordering, latency, wiretaps, determinism.
#include "net/sim.hpp"

#include <gtest/gtest.h>

namespace dcpl::net {
namespace {

/// Records deliveries and optionally echoes back.
class EchoNode final : public Node {
 public:
  EchoNode(Address addr, bool echo) : Node(std::move(addr)), echo_(echo) {}

  void on_packet(const Packet& p, Simulator& sim) override {
    received.push_back(p);
    times.push_back(sim.now());
    if (echo_) {
      Packet reply{address(), p.src, p.payload, p.context, p.protocol};
      sim.send(std::move(reply));
    }
  }

  std::vector<Packet> received;
  std::vector<Time> times;

 private:
  bool echo_;
};

TEST(Simulator, DeliversWithLinkLatency) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 5000);

  sim.send(Packet{"a", "b", to_bytes("hi"), 1, "test"});
  Time end = sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.times[0], 5000u);
  EXPECT_EQ(end, 5000u);
  EXPECT_EQ(to_string(b.received[0].payload), "hi");
}

TEST(Simulator, RequestResponseRoundTrip) {
  Simulator sim;
  EchoNode client("client", false), server("server", true);
  sim.add_node(client);
  sim.add_node(server);
  sim.connect("client", "server", 7000);

  sim.send(Packet{"client", "server", to_bytes("ping"), 1, "test"});
  sim.run();
  ASSERT_EQ(client.received.size(), 1u);
  EXPECT_EQ(client.times[0], 14000u);  // there and back
}

TEST(Simulator, DefaultLatencyForUnconnectedPairs) {
  Simulator sim;
  sim.set_default_latency(123);
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.send(Packet{"a", "b", {}, 0, ""});
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_EQ(b.times[0], 123u);
}

TEST(Simulator, HasLinkDistinguishesConfiguredPairs) {
  Simulator sim;
  sim.connect("a", "b", 5000);
  EXPECT_TRUE(sim.has_link("a", "b"));
  EXPECT_TRUE(sim.has_link("b", "a"));  // connect installs both directions
  EXPECT_FALSE(sim.has_link("a", "c"));
  EXPECT_FALSE(sim.has_link("c", "a"));
}

TEST(Simulator, LinkLatencyIsNulloptForUnknownPairs) {
  Simulator sim;
  sim.set_default_latency(123);
  sim.connect("a", "b", 5000);
  // Explicit link: the configured value.
  EXPECT_EQ(sim.link_latency("a", "b"), 5000u);
  EXPECT_EQ(sim.link_latency("b", "a"), 5000u);
  // Unknown pair: nullopt, NOT the default-latency fallback that
  // latency_between applies at delivery time.
  EXPECT_EQ(sim.link_latency("a", "c"), std::nullopt);
}

TEST(Simulator, ReconnectReplacesLatencyExplicitly) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 5000);
  sim.connect("a", "b", 900);  // documented: replaces the previous latency
  EXPECT_EQ(sim.link_latency("a", "b"), 900u);
  EXPECT_EQ(sim.link_latency("b", "a"), 900u);
  sim.send(Packet{"a", "b", to_bytes("hi"), 1, "test"});
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_EQ(b.times[0], 900u);
}

TEST(Simulator, ExtraDelayAddsToLatency) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 1000);
  sim.send(Packet{"a", "b", {}, 0, ""}, 250);
  sim.run();
  EXPECT_EQ(b.times.at(0), 1250u);
}

TEST(Simulator, FifoOrderForSimultaneousEvents) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 100);
  for (int i = 0; i < 10; ++i) {
    sim.send(Packet{"a", "b", Bytes{static_cast<std::uint8_t>(i)}, 0, ""});
  }
  sim.run();
  ASSERT_EQ(b.received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(b.received[i].payload[0], i);
}

TEST(Simulator, UnknownDestinationThrows) {
  Simulator sim;
  EchoNode a("a", false);
  sim.add_node(a);
  EXPECT_THROW(sim.send(Packet{"a", "nowhere", {}, 0, ""}), std::out_of_range);
}

TEST(Simulator, DuplicateAddressThrows) {
  Simulator sim;
  EchoNode a1("a", false), a2("a", false);
  sim.add_node(a1);
  EXPECT_THROW(sim.add_node(a2), std::invalid_argument);
}

TEST(Simulator, ScheduledCallbacksRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(300, [&] { order.push_back(3); });
  sim.at(100, [&] { order.push_back(1); });
  sim.at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_THROW(sim.at(0, [] {}), std::invalid_argument);
}

TEST(Simulator, WiretapSeesMetadataOnly) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 10);

  std::vector<TraceEntry> tapped;
  sim.add_wiretap([&](const TraceEntry& e) { tapped.push_back(e); });

  sim.send(Packet{"a", "b", to_bytes("secret payload"), 42, "proto"});
  sim.run();
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(tapped[0].src, "a");
  EXPECT_EQ(tapped[0].dst, "b");
  EXPECT_EQ(tapped[0].size, 14u);
  EXPECT_EQ(tapped[0].context, 42u);
  EXPECT_EQ(tapped[0].protocol, "proto");
}

TEST(Simulator, TraceAccumulatesAndCountsBytes) {
  Simulator sim;
  EchoNode a("a", false), b("b", true);
  sim.add_node(a);
  sim.add_node(b);
  sim.send(Packet{"a", "b", Bytes(10), 0, ""});
  sim.run();
  EXPECT_EQ(sim.packets_delivered(), 2u);
  EXPECT_EQ(sim.bytes_delivered(), 20u);
}

TEST(Simulator, ContextIdsAreUniqueAndNonZero) {
  Simulator sim;
  std::uint64_t c1 = sim.new_context();
  std::uint64_t c2 = sim.new_context();
  EXPECT_NE(c1, 0u);
  EXPECT_NE(c1, c2);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    EchoNode a("a", false), b("b", true), c("c", true);
    sim.add_node(a);
    sim.add_node(b);
    sim.add_node(c);
    sim.connect("a", "b", 11);
    sim.connect("a", "c", 13);
    sim.send(Packet{"a", "b", Bytes(3), 1, "x"});
    sim.send(Packet{"a", "c", Bytes(5), 2, "y"});
    sim.run();
    std::string log;
    for (const auto& e : sim.trace()) {
      log += std::to_string(e.time) + e.src + e.dst + ";";
    }
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}


TEST(Simulator, BandwidthAddsSerializationDelay) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 1000);
  sim.set_bandwidth("a", "b", 10);  // 10 bytes/ms

  sim.send(Packet{"a", "b", Bytes(100), 0, ""});  // 100 B / 10 B/ms = 10 ms
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_EQ(b.times[0], 1000u + 10'000u);
}

TEST(Simulator, ZeroBandwidthMeansInfinite) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 1000);
  sim.set_bandwidth("a", "b", 0);
  sim.send(Packet{"a", "b", Bytes(100000), 0, ""});
  sim.run();
  EXPECT_EQ(b.times.at(0), 1000u);
}

TEST(Simulator, BandwidthIsPerLink) {
  Simulator sim;
  EchoNode a("a", false), b("b", false), c("c", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.add_node(c);
  sim.connect("a", "b", 1000);
  sim.connect("a", "c", 1000);
  sim.set_bandwidth("a", "b", 1);  // slow
  sim.send(Packet{"a", "b", Bytes(50), 0, ""});
  sim.send(Packet{"a", "c", Bytes(50), 0, ""});
  sim.run();
  EXPECT_EQ(b.times.at(0), 51'000u);
  EXPECT_EQ(c.times.at(0), 1000u);
}

TEST(Simulator, TraceRecordingOffKeepsCountersAndWiretaps) {
  Simulator sim;
  EchoNode a("a", false), b("b", false);
  sim.add_node(a);
  sim.add_node(b);
  sim.set_trace_recording(false);

  std::vector<TraceEntry> tapped;
  sim.add_wiretap([&](const TraceEntry& e) { tapped.push_back(e); });
  sim.send(Packet{"a", "b", Bytes(100), 1, "t"});
  sim.send(Packet{"a", "b", Bytes(28), 2, "t"});
  sim.run();

  // The in-memory history is off, but totals and taps see every delivery.
  EXPECT_TRUE(sim.trace().empty());
  EXPECT_EQ(sim.packets_delivered(), 2u);
  EXPECT_EQ(sim.bytes_delivered(), 128u);
  ASSERT_EQ(tapped.size(), 2u);
  EXPECT_EQ(tapped[0].size, 100u);
  EXPECT_EQ(tapped[1].context, 2u);
  EXPECT_EQ(b.received.size(), 2u);

  // Re-enabling resumes accumulation from here.
  sim.set_trace_recording(true);
  sim.send(Packet{"a", "b", Bytes(1), 3, "t"});
  sim.run();
  ASSERT_EQ(sim.trace().size(), 1u);
  EXPECT_EQ(sim.trace()[0].context, 3u);
  EXPECT_EQ(sim.packets_delivered(), 3u);
}

TEST(Simulator, InternedButNodelessDestinationThrows) {
  Simulator sim;
  EchoNode a("a", false);
  sim.add_node(a);
  // connect() interns "ghost" without registering a node for it; sending
  // there must still throw, not index past the node table.
  sim.connect("a", "ghost", 5'000);
  ASSERT_TRUE(sim.interner().lookup("ghost").has_value());
  EXPECT_THROW(sim.send(Packet{"a", "ghost", {}, 0, ""}), std::out_of_range);
}

}  // namespace
}  // namespace dcpl::net
