// Unit tier for the traffic-aware shard partitioner.
//
// The contract under test (DESIGN.md §16): ShardPartitioner is a pure,
// deterministic function of the canonicalized graph — call order never
// matters, repeated runs agree bit-for-bit — and the returned placement
// respects the (1+epsilon)·mean load cap, keeps explicit pins authoritative
// over any refinement gain, and accounts cut/total edge weight exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "net/partition.hpp"

namespace dcpl::net {
namespace {

/// Recomputes cut/total/loads from scratch so the Result's own accounting
/// can be cross-checked instead of trusted.
struct Audit {
  std::uint64_t cut = 0;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> loads;
};

Audit audit(const ShardPartitioner::Result& r, std::uint32_t shards,
            const std::vector<std::pair<std::uint32_t, std::uint64_t>>& verts,
            const std::vector<std::tuple<std::uint32_t, std::uint32_t,
                                         std::uint64_t>>& edges) {
  Audit a;
  a.loads.assign(shards, 0);
  for (const auto& [v, load] : verts) {
    EXPECT_LT(v, r.assignment.size());
    const std::uint32_t s = r.assignment[v];
    EXPECT_LT(s, shards) << "vertex " << v << " unassigned";
    a.loads[s] += load;
  }
  for (const auto& [u, v, w] : edges) {
    if (u == v) continue;  // self-edges are ignored by contract
    a.total += w;
    if (r.assignment[u] != r.assignment[v]) a.cut += w;
  }
  return a;
}

TEST(Partition, DegenerateSingleShardAndEmptyGraph) {
  {
    ShardPartitioner empty({.shards = 4});
    const auto r = empty.partition();
    EXPECT_TRUE(r.assignment.empty());
    EXPECT_EQ(r.cut_weight, 0u);
    EXPECT_EQ(r.total_weight, 0u);
    ASSERT_EQ(r.loads.size(), 4u);
    for (const auto l : r.loads) EXPECT_EQ(l, 0u);
  }
  {
    ShardPartitioner one({.shards = 1});
    for (std::uint32_t v = 0; v < 16; ++v) one.add_vertex(v);
    for (std::uint32_t v = 0; v < 16; ++v) one.add_edge(v, (v + 1) % 16, 5);
    const auto r = one.partition();
    ASSERT_EQ(r.assignment.size(), 16u);
    for (const auto s : r.assignment) EXPECT_EQ(s, 0u);
    EXPECT_EQ(r.cut_weight, 0u);  // nothing can be cut with one shard
    EXPECT_EQ(r.total_weight, 16u * 5u);
    ASSERT_EQ(r.loads.size(), 1u);
    EXPECT_EQ(r.loads[0], 16u);
  }
}

TEST(Partition, UnreferencedIdsStayUnassigned) {
  ShardPartitioner p({.shards = 2});
  p.add_vertex(0);
  p.add_vertex(7);  // leaves ids 1..6 as holes
  const auto r = p.partition();
  ASSERT_EQ(r.assignment.size(), 8u);
  EXPECT_NE(r.assignment[0], ShardPartitioner::kUnassigned);
  EXPECT_NE(r.assignment[7], ShardPartitioner::kUnassigned);
  for (std::uint32_t v = 1; v < 7; ++v)
    EXPECT_EQ(r.assignment[v], ShardPartitioner::kUnassigned);
}

TEST(Partition, DeterministicAcrossRepeatsAndInsertionOrder) {
  // A moderately tangled graph: four 8-cliques with a sprinkling of weak
  // cross-clique edges. Weights vary by index so ties are rare but real.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> verts;
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> edges;
  for (std::uint32_t v = 0; v < 32; ++v) verts.emplace_back(v, 1 + v % 3);
  for (std::uint32_t c = 0; c < 4; ++c)
    for (std::uint32_t i = 0; i < 8; ++i)
      for (std::uint32_t j = i + 1; j < 8; ++j)
        edges.emplace_back(c * 8 + i, c * 8 + j, 10 + (i * j) % 7);
  for (std::uint32_t v = 0; v < 32; v += 5)
    edges.emplace_back(v, (v + 9) % 32, 1);

  auto build = [&](bool reversed) {
    ShardPartitioner p({.shards = 4, .epsilon = 0.1});
    auto vs = verts;
    auto es = edges;
    if (reversed) {
      std::reverse(vs.begin(), vs.end());
      std::reverse(es.begin(), es.end());
    }
    for (const auto& [v, load] : vs) p.add_vertex(v, load);
    for (const auto& [u, v, w] : es)
      reversed ? p.add_edge(v, u, w) : p.add_edge(u, v, w);
    return p.partition();
  };

  const auto a = build(false);
  const auto b = build(false);
  const auto c = build(true);
  EXPECT_EQ(a.assignment, b.assignment) << "same calls, different placement";
  EXPECT_EQ(a.assignment, c.assignment) << "insertion order leaked in";
  EXPECT_EQ(a.cut_weight, c.cut_weight);
  EXPECT_EQ(a.loads, c.loads);

  const auto chk = audit(a, 4, verts, edges);
  EXPECT_EQ(a.cut_weight, chk.cut);
  EXPECT_EQ(a.total_weight, chk.total);
  EXPECT_EQ(a.loads, chk.loads);
}

TEST(Partition, RespectsBalanceCap) {
  // A star graph is the adversarial case for greedy growth: every leaf
  // wants to sit with the hub. The cap must force spill to other shards.
  constexpr std::uint32_t kShards = 4;
  constexpr std::uint32_t kLeaves = 63;
  ShardPartitioner p({.shards = kShards, .epsilon = 0.05});
  p.add_vertex(0);
  for (std::uint32_t v = 1; v <= kLeaves; ++v) {
    p.add_vertex(v);
    p.add_edge(0, v, 100);
  }
  const auto r = p.partition();
  const std::uint64_t total = kLeaves + 1;
  const auto cap = static_cast<std::uint64_t>(
      (1.0 + 0.05) * static_cast<double>(total) / kShards + 1.0);
  for (std::uint32_t s = 0; s < kShards; ++s)
    EXPECT_LE(r.loads[s], cap) << "shard " << s << " over the balance cap";
  EXPECT_EQ(std::accumulate(r.loads.begin(), r.loads.end(), std::uint64_t{0}),
            total);
  // With 64 unit-load vertices over 4 shards, the cap forbids any shard
  // from holding more than 17, so most star edges are necessarily cut.
  EXPECT_GT(r.cut_weight, 0u);
}

TEST(Partition, AccumulatesRepeatedVerticesAndEdges) {
  ShardPartitioner p({.shards = 2});
  p.add_vertex(0, 2);
  p.add_vertex(0, 3);       // load accumulates to 5
  p.add_edge(0, 1, 4);
  p.add_edge(1, 0, 6);      // undirected: same edge, weight 10
  p.add_edge(2, 2, 1000);   // self-edge: dropped entirely, even the vertex
  const auto r = p.partition();
  EXPECT_EQ(r.total_weight, 10u);
  ASSERT_GE(r.assignment.size(), 2u);
  if (r.assignment.size() > 2)
    EXPECT_EQ(r.assignment[2], ShardPartitioner::kUnassigned);
  EXPECT_EQ(std::accumulate(r.loads.begin(), r.loads.end(), std::uint64_t{0}),
            5u + 1u);  // vertex 0 load 5, implicit vertex 1 load 1
  // Edge {0,1} is the only cuttable weight; whatever the placement, the
  // accounting must agree with it.
  const bool split = r.assignment[0] != r.assignment[1];
  EXPECT_EQ(r.cut_weight, split ? 10u : 0u);
}

TEST(Partition, PinsWinOverPolicy) {
  // Two 4-cliques joined by one weak edge; the policy alone would keep
  // each clique whole (the cap forbids both landing on one shard). Pin one
  // vertex of clique A into clique B's shard territory and verify the pin
  // survives refinement.
  ShardPartitioner p({.shards = 2, .epsilon = 0.2});
  for (std::uint32_t c = 0; c < 2; ++c)
    for (std::uint32_t i = 0; i < 4; ++i)
      for (std::uint32_t j = i + 1; j < 4; ++j)
        p.add_edge(c * 4 + i, c * 4 + j, 50);
  p.add_edge(3, 4, 1);
  const auto free_run = p.partition();
  // Sanity: unpinned, each clique lands whole (cut == the weak bridge).
  EXPECT_EQ(free_run.cut_weight, 1u);

  // Pin two members of the SAME clique to different shards. Any relabeling
  // still has to split them, and the pins name absolute shard indices.
  p.pin(0, 0);
  p.pin(1, 1);
  const auto pinned = p.partition();
  EXPECT_EQ(pinned.assignment[0], 0u) << "pin(0, 0) did not hold";
  EXPECT_EQ(pinned.assignment[1], 1u) << "pin(1, 1) did not hold";
  // Splitting a 4-clique cuts the pinned pair's edge plus one edge per
  // remaining member, whichever side they land on: >= 3 x 50.
  EXPECT_GE(pinned.cut_weight, 3u * 50u);
}

TEST(Partition, PinModuloShardCountAndPinnedLoadExempt) {
  ShardPartitioner p({.shards = 2});
  p.add_vertex(0);
  p.pin(0, 7);  // reduced modulo 2 -> shard 1
  const auto r = p.partition();
  EXPECT_EQ(r.assignment[0], 1u);

  // Pins may violate the cap: pile every vertex onto shard 0 by pin and
  // confirm the partitioner honors it rather than rebalancing.
  ShardPartitioner q({.shards = 4, .epsilon = 0.0});
  for (std::uint32_t v = 0; v < 12; ++v) {
    q.add_vertex(v);
    q.pin(v, 0);
  }
  const auto all0 = q.partition();
  for (std::uint32_t v = 0; v < 12; ++v) EXPECT_EQ(all0.assignment[v], 0u);
  EXPECT_EQ(all0.loads[0], 12u);
}

TEST(Partition, RefinementImprovesCommunityCut) {
  // Two 6-communities with strong internal edges and a few weak bridges.
  // The exact cut depends on the seeding pass, but a correct refinement
  // must land at the obvious optimum: one community per shard.
  ShardPartitioner p({.shards = 2, .epsilon = 0.2});
  for (std::uint32_t c = 0; c < 2; ++c)
    for (std::uint32_t i = 0; i < 6; ++i)
      for (std::uint32_t j = i + 1; j < 6; ++j)
        p.add_edge(c * 6 + i, c * 6 + j, 20);
  for (std::uint32_t k = 0; k < 3; ++k) p.add_edge(k, 6 + k, 1);
  const auto r = p.partition();
  EXPECT_EQ(r.cut_weight, 3u);  // only the three unit bridges cross
  ASSERT_EQ(r.loads.size(), 2u);
  EXPECT_EQ(r.loads[0], 6u);
  EXPECT_EQ(r.loads[1], 6u);
}

}  // namespace
}  // namespace dcpl::net
