// HTTP message model: binary/text encodings and malformed-input handling.
#include "http/message.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dcpl::http {
namespace {

Request sample_request() {
  Request req;
  req.method = "POST";
  req.authority = "origin.example";
  req.path = "/api/v1/search?q=test";
  req.headers = {{"Content-Type", "application/json"}, {"X-Trace", "abc"}};
  req.body = to_bytes("{\"q\":\"test\"}");
  return req;
}

TEST(HttpRequest, BinaryRoundTrip) {
  Request req = sample_request();
  auto decoded = Request::decode_binary(req.encode_binary());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "POST");
  EXPECT_EQ(decoded->authority, "origin.example");
  EXPECT_EQ(decoded->path, "/api/v1/search?q=test");
  EXPECT_EQ(decoded->headers, req.headers);
  EXPECT_EQ(decoded->body, req.body);
}

TEST(HttpRequest, DefaultsRoundTrip) {
  Request req;
  auto decoded = Request::decode_binary(req.encode_binary());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "GET");
  EXPECT_EQ(decoded->path, "/");
  EXPECT_TRUE(decoded->headers.empty());
  EXPECT_TRUE(decoded->body.empty());
}

TEST(HttpRequest, HeaderLookupIsCaseInsensitive) {
  Request req = sample_request();
  EXPECT_EQ(req.header("content-type"), "application/json");
  EXPECT_EQ(req.header("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(req.header("missing"), "");
}

TEST(HttpRequest, DecodeRejectsTruncation) {
  Bytes enc = sample_request().encode_binary();
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(Request::decode_binary(BytesView(enc).first(len)).ok())
        << "len=" << len;
  }
}

TEST(HttpRequest, DecodeRejectsTrailingGarbage) {
  Bytes enc = sample_request().encode_binary();
  enc.push_back(0);
  EXPECT_FALSE(Request::decode_binary(enc).ok());
}

TEST(HttpRequest, TextEncodingLooksLikeHttp1) {
  std::string text = sample_request().encode_text();
  EXPECT_NE(text.find("POST /api/v1/search?q=test HTTP/1.1\r\n"),
            std::string::npos);
  EXPECT_NE(text.find("Host: origin.example\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 12\r\n"), std::string::npos);
}

TEST(HttpResponse, BinaryRoundTrip) {
  Response resp;
  resp.status = 404;
  resp.headers = {{"Server", "dcpl"}};
  resp.body = to_bytes("not found");
  auto decoded = Response::decode_binary(resp.encode_binary());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status, 404);
  EXPECT_EQ(decoded->headers, resp.headers);
  EXPECT_EQ(to_string(decoded->body), "not found");
}

TEST(HttpResponse, DecodeRejectsTruncation) {
  Response resp;
  resp.body = to_bytes("payload");
  Bytes enc = resp.encode_binary();
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(Response::decode_binary(BytesView(enc).first(len)).ok());
  }
}

TEST(HttpResponse, TextEncoding) {
  Response resp;
  resp.status = 200;
  resp.body = to_bytes("ok");
  std::string text = resp.encode_text();
  EXPECT_NE(text.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\nok"), std::string::npos);
}

TEST(HttpRequest, LargeBodyRoundTrip) {
  dcpl::XoshiroRng rng(5);
  Request req;
  req.body = rng.bytes(100'000);
  auto decoded = Request::decode_binary(req.encode_binary());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->body, req.body);
}

TEST(HttpRequest, ManyHeadersRoundTrip) {
  Request req;
  for (int i = 0; i < 300; ++i) {
    req.headers.emplace_back("h" + std::to_string(i), std::to_string(i));
  }
  auto decoded = Request::decode_binary(req.encode_binary());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->headers.size(), 300u);
  EXPECT_EQ(decoded->headers[299].second, "299");
}

}  // namespace
}  // namespace dcpl::http
