// Shared determinism-oracle workloads for the simulator's event engine.
//
// Both workloads were recorded once against the seed binary-heap engine
// (std::priority_queue of type-erased closures) and their outputs frozen
// into tests/test_engine.cpp as goldens. Any event-engine rewrite must
// reproduce them exactly: the delivered (time, src, dst, size, context,
// protocol) sequence *is* the observable behaviour every table, figure,
// and fault experiment in this repo folds over.
//
// The small workload is human-readable (one log line per delivery,
// callback, and breach) and deliberately hits the engine's awkward spots:
// ties at identical timestamps, a send timed to land exactly on the
// calendar wheel's 2^20 us horizon boundary, far-future events that must
// ride the overflow rung, and a fault plan installed mid-run whose
// loss/dup/jitter rolls are consumed in send order. The big workload is a
// seeded-random 40-node forwarding mesh (~20k deliveries across several
// wheel rotations) folded into one FNV-1a hash.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/faults.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"

namespace dcpl::testing {

inline std::uint64_t fnv_init() { return 1469598103934665603ull; }

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
}

inline void fnv_mix(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  fnv_mix(h, s.size());
}

/// Logs every delivery; replies to "ping" with a one-byte-larger "pong",
/// and forwards "hop" packets (payload[0] = remaining hops) to `next`.
class OracleNode : public net::Node {
 public:
  OracleNode(net::Address a, std::vector<std::string>* log)
      : Node(std::move(a)), log_(log) {}

  std::string next;

  void on_packet(const net::Packet& p, net::Simulator& sim) override {
    std::ostringstream os;
    os << "D " << sim.now() << " " << p.src << " " << p.dst << " "
       << p.payload.size() << " " << p.context << " " << p.protocol;
    log_->push_back(os.str());
    if (p.protocol == "ping") {
      sim.send(net::Packet{address(), p.src, Bytes(p.payload.size() + 1),
                           p.context, "pong"});
    } else if (p.protocol == "hop" && !p.payload.empty() && p.payload[0] > 0 &&
               !next.empty()) {
      Bytes b = p.payload;
      --b[0];
      sim.send(net::Packet{address(), next, std::move(b), p.context, "hop"});
    }
  }

 private:
  std::vector<std::string>* log_;
};

/// The readable oracle: returns the full ordered event log.
inline std::vector<std::string> oracle_small_trace() {
  std::vector<std::string> log;
  net::Simulator sim;
  obs::Registry reg;
  sim.set_metrics(reg);

  OracleNode a("a", &log), b("b", &log), c("c", &log), d("d", &log),
      far("far", &log);
  for (OracleNode* n : {&a, &b, &c, &d, &far}) sim.add_node(*n);
  a.next = "b";
  b.next = "c";
  c.next = "d";
  sim.connect("a", "b", 100);
  sim.connect("b", "c", 250);
  sim.connect("c", "d", 1'000);
  sim.connect("a", "far", 2'500'000);  // rides the overflow rung
  sim.set_default_latency(10'000);
  sim.set_breach_handler([&](const net::BreachEvent& ev) {
    log.push_back("B " + std::to_string(sim.now()) + " " + ev.party);
  });
  auto cb = [&](const std::string& tag) {
    log.push_back("C " + std::to_string(sim.now()) + " " + tag);
  };

  // Ties: three same-latency sends all land at t=100 in seq order, with a
  // callback at exactly t=100 scheduled between the second and third send.
  sim.send(net::Packet{"a", "b", Bytes(1), sim.new_context(), "tie"});
  sim.send(net::Packet{"a", "b", Bytes(2), sim.new_context(), "tie"});
  sim.at(100, [&] { cb("tie"); });
  sim.send(net::Packet{"a", "b", Bytes(3), sim.new_context(), "tie"});

  // A 3-hop forwarding chain and a ping/pong round trip.
  sim.send(net::Packet{"a", "b", Bytes{2, 9}, sim.new_context(), "hop"});
  sim.send(net::Packet{"c", "b", Bytes(5), sim.new_context(), "ping"});

  // Wheel-rollover boundary: callbacks straddling the 2^20 us horizon, and
  // a send timed to deliver exactly at it (1'048'400 + 100 + 76 = 2^20).
  sim.at(1'048'575, [&] { cb("pre-roll"); });
  sim.at(1'048'576, [&] { cb("roll"); });
  sim.at(1'048'577, [&] { cb("post-roll"); });
  sim.at(1'048'400, [&] {
    cb("roll-send");
    sim.send(net::Packet{"a", "b", Bytes(7), sim.new_context(), "roll"}, 76);
  });

  // Overflow rung: a 2.5 s link plus a far-future callback that sends again.
  sim.send(net::Packet{"a", "far", Bytes(11), sim.new_context(), "deep"});
  sim.at(3'500'000, [&] {
    cb("deep");
    sim.send(net::Packet{"a", "far", Bytes(13), sim.new_context(), "deep"});
  });

  // Mid-run fault plan: stochastic loss/dup/jitter, a b<->c partition, a
  // crash window on d, and a breach on c. Installed at virtual t=2s, after
  // thousands of fault-free events have already drained.
  sim.at(2'000'000, [&] {
    cb("plan");
    net::FaultPlan plan(42);
    plan.impair({0.25, 0.25, 0.5, 500});
    plan.partition("b", "c", 2'200'000, 2'400'000);
    plan.crash("d", 2'600'000, 2'700'000);
    plan.breach("c", 2'500'000);
    sim.set_fault_plan(std::move(plan));
  });
  for (int i = 0; i < 16; ++i) {
    const net::Time t = 2'050'000 + 50'000 * static_cast<net::Time>(i);
    sim.at(t, [&sim, i] {
      sim.send(net::Packet{"a", "b", Bytes(static_cast<std::size_t>(1 + i)),
                           sim.new_context(), "ping"});
      sim.send(net::Packet{"b", "c", Bytes(4), sim.new_context(), "data"});
      sim.send(net::Packet{"c", "d", Bytes(6), sim.new_context(), "data"});
    });
  }

  const net::Time end = sim.run();
  log.push_back("E " + std::to_string(end));
  const net::FaultStats& fs = sim.fault_stats();
  log.push_back("F " + std::to_string(fs.lost) + " " +
                std::to_string(fs.duplicated) + " " +
                std::to_string(fs.jittered) + " " +
                std::to_string(fs.partition_dropped) + " " +
                std::to_string(fs.offline_dropped) + " " +
                std::to_string(fs.breaches_fired));
  log.push_back("X c " + std::to_string(sim.is_breached("c")) + " " +
                (sim.breached_at("c") ? std::to_string(*sim.breached_at("c"))
                                      : std::string("-")));
  log.push_back("X a " + std::to_string(sim.is_breached("a")) + " -");
  return log;
}

/// The big oracle: a seeded-random forwarding mesh under a fault plan,
/// folded into one order-sensitive hash.
inline std::uint64_t oracle_big_hash() {
  constexpr int kNodes = 40;
  std::uint64_t h = fnv_init();

  struct HashNode : net::Node {
    std::uint64_t* hash;
    net::Address next;
    HashNode(net::Address a, std::uint64_t* fold)
        : Node(std::move(a)), hash(fold) {}
    void on_packet(const net::Packet& p, net::Simulator& sim) override {
      fnv_mix(*hash, sim.now());
      fnv_mix(*hash, p.src);
      fnv_mix(*hash, p.dst);
      fnv_mix(*hash, p.payload.size());
      fnv_mix(*hash, p.context);
      fnv_mix(*hash, p.protocol);
      if (!p.payload.empty() && p.payload[0] > 0) {
        Bytes b = p.payload;
        --b[0];
        sim.send(net::Packet{address(), next, std::move(b), p.context, "fwd"});
      }
    }
  };

  net::Simulator sim;
  obs::Registry reg;
  sim.set_metrics(reg);
  std::vector<std::unique_ptr<HashNode>> nodes;
  nodes.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<HashNode>("n" + std::to_string(i), &h));
  }
  for (int i = 0; i < kNodes; ++i) {
    nodes[i]->next = "n" + std::to_string((i + 1) % kNodes);
    sim.add_node(*nodes[i]);
    sim.connect("n" + std::to_string(i), "n" + std::to_string((i + 1) % kNodes),
                50 + (i * 37) % 400);
  }
  net::FaultPlan plan(99);
  plan.impair({0.1, 0.1, 0.3, 300});
  plan.partition("n3", "n4", 100'000, 3'000'000);
  plan.crash("n7", 500'000, 1'500'000);
  plan.breach("n5", 2'000'000);
  sim.set_fault_plan(std::move(plan));

  XoshiroRng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const net::Time t = rng.below(4'000'000);
    HashNode* n = nodes[rng.below(kNodes)].get();
    const std::uint8_t ttl = static_cast<std::uint8_t>(rng.below(6));
    const std::size_t size = 1 + static_cast<std::size_t>(rng.below(96));
    sim.at(t, [&sim, n, ttl, size] {
      Bytes b(size);
      b[0] = ttl;
      sim.send(net::Packet{n->address(), n->next, std::move(b),
                           sim.new_context(), "fwd"});
    });
  }
  const net::Time end = sim.run();
  fnv_mix(h, end);
  const net::FaultStats& fs = sim.fault_stats();
  for (std::uint64_t v :
       {fs.lost, fs.duplicated, fs.jittered, fs.partition_dropped,
        fs.offline_dropped, fs.breaches_fired}) {
    fnv_mix(h, v);
  }
  return h;
}

}  // namespace dcpl::testing
