// PPM / Prio-style aggregation (§3.2.5): field arithmetic, sharing,
// end-to-end aggregation, validity rejection, and the paper's T7 table.
#include "systems/ppm/ppm.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "crypto/csprng.hpp"

namespace dcpl::systems::ppm {
namespace {

TEST(Field, BasicArithmetic) {
  Fp a{5}, b{7};
  EXPECT_EQ((a + b).value(), 12u);
  EXPECT_EQ((b - a).value(), 2u);
  EXPECT_EQ((a - b).value(), Fp::kP - 2);
  EXPECT_EQ((a * b).value(), 35u);
  EXPECT_EQ((-a).value(), Fp::kP - 5);
  EXPECT_EQ((-Fp{}).value(), 0u);
}

TEST(Field, ReductionAtBoundaries) {
  Fp max{Fp::kP - 1};
  EXPECT_EQ((max + Fp{1}).value(), 0u);
  EXPECT_EQ((max * max).value(), 1u);  // (-1)^2 = 1
  EXPECT_EQ(Fp{Fp::kP}.value(), 0u);  // constructor reduces
}

TEST(Field, MulMatchesNaiveForRandomPairs) {
  crypto::ChaChaRng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t x = rng.below(Fp::kP), y = rng.below(Fp::kP);
    unsigned __int128 expected =
        (static_cast<unsigned __int128>(x) * y) % Fp::kP;
    EXPECT_EQ((Fp{x} * Fp{y}).value(), static_cast<std::uint64_t>(expected));
  }
}

TEST(Field, ShareCombineRoundTrip) {
  crypto::ChaChaRng rng(2);
  for (std::size_t k : {1u, 2u, 3u, 8u}) {
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{12345},
          Fp::kP - 1}) {
      auto shares = share_value(Fp{v}, k, rng);
      EXPECT_EQ(shares.size(), k);
      EXPECT_EQ(combine_shares(shares).value(), v);
    }
  }
  EXPECT_THROW(share_value(Fp{1}, 0, rng), std::invalid_argument);
}

TEST(Field, SingleShareRevealsNothingStructural) {
  // Each individual share of the same value is (statistically) uniform:
  // two sharings of the same value differ in every share.
  crypto::ChaChaRng rng(3);
  auto s1 = share_value(Fp{1}, 3, rng);
  auto s2 = share_value(Fp{1}, 3, rng);
  EXPECT_NE(s1[0].value(), s2[0].value());
  EXPECT_NE(s1[1].value(), s2[1].value());
}

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::vector<std::unique_ptr<Aggregator>> aggs;
  std::unique_ptr<Collector> collector;
  std::unique_ptr<ForwardProxy> proxy;
  std::vector<std::unique_ptr<Client>> clients;

  Fixture(std::size_t k_aggs, std::size_t n_clients) {
    std::vector<net::Address> agg_addrs;
    for (std::size_t i = 0; i < k_aggs; ++i) {
      agg_addrs.push_back("agg" + std::to_string(i) + ".example");
    }
    for (std::size_t i = 0; i < k_aggs; ++i) {
      book.set(agg_addrs[i], core::benign_identity("addr:" + agg_addrs[i]));
      aggs.push_back(std::make_unique<Aggregator>(
          agg_addrs[i], i, k_aggs, agg_addrs[0], log, book, 10 + i));
      sim.add_node(*aggs.back());
    }
    aggs[0]->set_peers(agg_addrs);

    book.set("collector.example",
             core::benign_identity("addr:collector.example"));
    collector = std::make_unique<Collector>("collector.example", agg_addrs,
                                            log, book);
    sim.add_node(*collector);

    book.set("proxy.example", core::benign_identity("addr:proxy.example"));
    proxy = std::make_unique<ForwardProxy>("proxy.example", log, book);
    sim.add_node(*proxy);

    for (std::size_t i = 0; i < n_clients; ++i) {
      std::string addr = "10.0.3." + std::to_string(i + 1);
      std::string user = "user:c" + std::to_string(i);
      book.set(addr, core::sensitive_identity(user, "network"));
      clients.push_back(
          std::make_unique<Client>(addr, user, i + 1, log, 100 + i));
      sim.add_node(*clients.back());
    }
  }

  std::vector<AggregatorInfo> agg_infos() const {
    std::vector<AggregatorInfo> out;
    for (const auto& a : aggs) {
      out.push_back(AggregatorInfo{a->address(), a->key().public_key});
    }
    return out;
  }
};

TEST(Ppm, AggregationIsExact) {
  Fixture f(2, 10);
  // Clients 0,2,4,6,8 report true.
  for (std::size_t i = 0; i < 10; ++i) {
    f.clients[i]->submit_bool(i % 2 == 0, f.agg_infos(), f.sim);
  }
  f.sim.run();

  std::size_t count = 0;
  std::uint64_t total = 0;
  f.collector->collect(f.sim, [&](std::size_t c, std::uint64_t t) {
    count = c;
    total = t;
  });
  f.sim.run();
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(total, 5u);
}

class PpmAggregatorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PpmAggregatorSweep, CorrectForKAggregators) {
  const std::size_t k = GetParam();
  Fixture f(k, 7);
  for (std::size_t i = 0; i < 7; ++i) {
    f.clients[i]->submit_bool(true, f.agg_infos(), f.sim);
  }
  f.sim.run();
  std::uint64_t total = 0;
  f.collector->collect(f.sim,
                       [&](std::size_t, std::uint64_t t) { total = t; });
  f.sim.run();
  EXPECT_EQ(total, 7u);
}

INSTANTIATE_TEST_SUITE_P(K, PpmAggregatorSweep, ::testing::Values(2, 3, 5, 8));

TEST(Ppm, InconsistentCheaterRejected) {
  Fixture f(2, 2);
  f.clients[0]->submit_bool(true, f.agg_infos(), f.sim);
  // A cheater claiming x=5 with honest x^2=25: x^2 - x = 20 != 0.
  f.clients[1]->submit_bool(false, f.agg_infos(), f.sim, {}, Fp{5}, Fp{25});
  f.sim.run();

  for (auto& a : f.aggs) {
    EXPECT_EQ(a->accepted(), 1u);
    EXPECT_EQ(a->rejected(), 1u);
  }
  std::uint64_t total = 99;
  std::size_t count = 99;
  f.collector->collect(f.sim, [&](std::size_t c, std::uint64_t t) {
    count = c;
    total = t;
  });
  f.sim.run();
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(total, 1u);  // the cheater's 5 never entered the sum
}

// Paper table §3.2.5: Client (▲,●), Aggregator (▲,⊙), Collector (△,⊙).
TEST(Ppm, TableT7TuplesMatchPaper) {
  Fixture f(2, 3);
  for (auto& c : f.clients) c->submit_bool(true, f.agg_infos(), f.sim);
  f.sim.run();
  f.collector->collect(f.sim, nullptr);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.0.3.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("agg0.example").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("agg1.example").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("collector.example").to_string(), "(△, ⊙)");
  EXPECT_TRUE(
      a.is_decoupled(std::vector<core::Party>{"10.0.3.1", "10.0.3.2",
                                              "10.0.3.3"}));
}

TEST(Ppm, ProxiedSubmissionHidesClientFromAggregators) {
  Fixture f(2, 1);
  f.clients[0]->submit_bool(true, f.agg_infos(), f.sim, "proxy.example");
  f.sim.run();
  std::uint64_t total = 0;
  f.collector->collect(f.sim,
                       [&](std::size_t, std::uint64_t t) { total = t; });
  f.sim.run();
  EXPECT_EQ(total, 1u);

  core::DecouplingAnalysis a(f.log);
  // §3.2.5: through an OHTTP-style proxy the aggregator loses ▲.
  EXPECT_EQ(a.tuple_for("agg0.example").to_string(), "(△, ⊙)");
  EXPECT_EQ(a.tuple_for("proxy.example").to_string(), "(▲, ⊙)");
  EXPECT_TRUE(a.is_decoupled("10.0.3.1"));
}

TEST(Ppm, AggregatorsAloneOrTogetherSeeOnlyShares) {
  Fixture f(2, 4);
  for (auto& c : f.clients) c->submit_bool(true, f.agg_infos(), f.sim);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.breach("agg0.example").coupled());
  EXPECT_FALSE(a.breach("agg1.example").coupled());
  // NOTE: colluding aggregators CAN recombine shares in the real protocol;
  // our observation model records only what each party's code extracted, so
  // this asserts the non-collusion assumption the paper makes explicit in
  // §4.1 rather than cryptographic impossibility.
  for (const auto& obs : f.log.for_party("agg0.example")) {
    EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveData);
  }
}

TEST(Ppm, BaselineServerCouplesIdentityAndValue) {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("10.0.4.1", core::sensitive_identity("user:solo", "network"));
  TelemetryServer server("telemetry.example", log, book);
  sim.add_node(server);

  sim.send(net::Packet{"10.0.4.1", "telemetry.example",
                       make_plain_report("user:solo", 1), 1, "telemetry"});
  sim.run();
  EXPECT_EQ(server.count(), 1u);
  EXPECT_EQ(server.total(), 1u);

  core::DecouplingAnalysis a(log);
  EXPECT_TRUE(a.breach("telemetry.example").coupled());
  EXPECT_EQ(a.tuple_for("telemetry.example").to_string(), "(▲, ●)");
}

TEST(Ppm, CountsConsistentAcrossAggregators) {
  Fixture f(3, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    f.clients[i]->submit_bool(i < 2, f.agg_infos(), f.sim);
  }
  f.sim.run();
  for (auto& a : f.aggs) EXPECT_EQ(a->accepted(), 6u);
  std::uint64_t total = 0;
  f.collector->collect(f.sim,
                       [&](std::size_t, std::uint64_t t) { total = t; });
  f.sim.run();
  EXPECT_EQ(total, 2u);
}


TEST(PpmHistogram, AggregatesOneHotContributions) {
  Fixture f(3, 9);
  // Buckets: 0,0,0,1,1,2,2,2,2 -> histogram {3,2,4}.
  const std::size_t buckets[] = {0, 0, 0, 1, 1, 2, 2, 2, 2};
  for (std::size_t i = 0; i < 9; ++i) {
    f.clients[i]->submit_histogram(buckets[i], 3, f.agg_infos(), f.sim);
  }
  f.sim.run();

  std::vector<std::uint64_t> totals;
  std::size_t count = 0;
  f.collector->collect_histogram(f.sim,
                                 [&](std::size_t c,
                                     const std::vector<std::uint64_t>& t) {
                                   count = c;
                                   totals = t;
                                 });
  f.sim.run();
  EXPECT_EQ(count, 9u);
  EXPECT_EQ(totals, (std::vector<std::uint64_t>{3, 2, 4}));
}

TEST(PpmHistogram, DoubleVoteRejected) {
  Fixture f(2, 2);
  f.clients[0]->submit_histogram(1, 3, f.agg_infos(), f.sim);
  // A cheater sets two buckets: every bucket is boolean but the one-hot sum
  // opens to 2, so the submission is rejected.
  f.clients[1]->submit_histogram(0, 3, f.agg_infos(), f.sim, {},
                                 std::vector<Fp>{Fp{1}, Fp{1}, Fp{0}});
  f.sim.run();

  std::vector<std::uint64_t> totals;
  f.collector->collect_histogram(
      f.sim,
      [&](std::size_t, const std::vector<std::uint64_t>& t) { totals = t; });
  f.sim.run();
  EXPECT_EQ(totals, (std::vector<std::uint64_t>{0, 1, 0}));
  for (auto& a : f.aggs) EXPECT_EQ(a->rejected(), 1u);
}

TEST(PpmHistogram, NonBooleanBucketRejected) {
  Fixture f(2, 1);
  // One bucket holds 5: sum of x^2-x opens nonzero.
  f.clients[0]->submit_histogram(0, 2, f.agg_infos(), f.sim, {},
                                 std::vector<Fp>{Fp{5}, Fp{0}});
  f.sim.run();
  for (auto& a : f.aggs) {
    EXPECT_EQ(a->rejected(), 1u);
    EXPECT_EQ(a->accepted(), 0u);
  }
}

TEST(PpmHistogram, OutOfRangeBucketThrows) {
  Fixture f(2, 1);
  EXPECT_THROW(f.clients[0]->submit_histogram(3, 3, f.agg_infos(), f.sim),
               std::invalid_argument);
}

TEST(PpmHistogram, ViaProxyStillDecoupled) {
  Fixture f(2, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    f.clients[i]->submit_histogram(i % 2, 2, f.agg_infos(), f.sim,
                                   "proxy.example");
  }
  f.sim.run();
  std::vector<std::uint64_t> totals;
  f.collector->collect_histogram(
      f.sim,
      [&](std::size_t, const std::vector<std::uint64_t>& t) { totals = t; });
  f.sim.run();
  EXPECT_EQ(totals, (std::vector<std::uint64_t>{2, 2}));

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("agg0.example").to_string(), "(△, ⊙)");
}

TEST(PpmHistogram, MixedBooleanAndHistogramWorkloads) {
  Fixture f(2, 4);
  f.clients[0]->submit_bool(true, f.agg_infos(), f.sim);
  f.clients[1]->submit_bool(true, f.agg_infos(), f.sim);
  f.clients[2]->submit_histogram(1, 4, f.agg_infos(), f.sim);
  f.clients[3]->submit_histogram(3, 4, f.agg_infos(), f.sim);
  f.sim.run();

  std::uint64_t bool_total = 0;
  f.collector->collect(f.sim,
                       [&](std::size_t, std::uint64_t t) { bool_total = t; });
  f.sim.run();
  std::vector<std::uint64_t> totals;
  f.collector->collect_histogram(
      f.sim,
      [&](std::size_t, const std::vector<std::uint64_t>& t) { totals = t; });
  f.sim.run();
  EXPECT_EQ(bool_total, 2u);
  EXPECT_EQ(totals, (std::vector<std::uint64_t>{0, 1, 0, 1}));
}


TEST(PpmInteger, BoundedSumAggregatesExactly) {
  Fixture f(2, 5);
  const std::uint64_t values[] = {0, 7, 12, 15, 3};  // 4-bit range
  for (std::size_t i = 0; i < 5; ++i) {
    f.clients[i]->submit_integer(values[i], 4, f.agg_infos(), f.sim);
  }
  f.sim.run();

  std::vector<std::uint64_t> bit_sums;
  f.collector->collect_histogram(
      f.sim,
      [&](std::size_t, const std::vector<std::uint64_t>& t) { bit_sums = t; });
  f.sim.run();
  EXPECT_EQ(weighted_total(bit_sums), 37u);  // 0+7+12+15+3
}

TEST(PpmInteger, RangeIsEnforcedBySharedBits) {
  Fixture f(2, 1);
  // Values above 2^bits are rejected client-side...
  EXPECT_THROW(f.clients[0]->submit_integer(16, 4, f.agg_infos(), f.sim),
               std::invalid_argument);
  EXPECT_THROW(f.clients[0]->submit_integer(1, 0, f.agg_infos(), f.sim),
               std::invalid_argument);
  // ...and a malicious client encoding a non-bit entry is caught by the
  // joint boolean check: entry value 3 in a "bit" slot.
  f.clients[0]->submit_histogram(0, 4, f.agg_infos(), f.sim, {},
                                 std::vector<Fp>{Fp{3}, Fp{0}, Fp{0},
                                                 Fp{0}});
  f.sim.run();
  for (auto& a : f.aggs) EXPECT_EQ(a->rejected(), 1u);
}

TEST(PpmInteger, BitSumsDoNotLeakIndividualValues) {
  // Unlike one-hot submissions, integer submissions never open their sum:
  // the leader's checks must all be mode-2 (nothing revealed beyond
  // validity). Verified behaviorally: a single submission aggregates to the
  // exact value while every aggregator saw only uniform shares.
  Fixture f(2, 1);
  f.clients[0]->submit_integer(11, 4, f.agg_infos(), f.sim);
  f.sim.run();
  std::vector<std::uint64_t> bit_sums;
  f.collector->collect_histogram(
      f.sim,
      [&](std::size_t, const std::vector<std::uint64_t>& t) { bit_sums = t; });
  f.sim.run();
  EXPECT_EQ(weighted_total(bit_sums), 11u);
  for (const auto& obs : f.log.for_party("agg0.example")) {
    EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveData);
  }
}

TEST(PpmInteger, WeightedTotalHelper) {
  EXPECT_EQ(weighted_total({}), 0u);
  EXPECT_EQ(weighted_total({1, 1, 1}), 7u);
  EXPECT_EQ(weighted_total({5, 0, 2}), 13u);  // 5*1 + 2*4
}

}  // namespace
}  // namespace dcpl::systems::ppm
