// Deterministic-parallelism tier for the sharded engine.
//
// The contract under test (DESIGN.md §13): with set_shards(N) fixed, a run
// is bit-stable across repetitions regardless of thread interleaving — same
// trace, same flow-ledger event stream, same per-shard stats — and for any
// N the *aggregate* outcome (per-node reception multisets, delivered
// packet/byte totals, end time, window-only fault effects, folded knowledge
// tuples) matches the serial engine. Impairment RNG streams are per-shard
// by design, so stochastic faults are asserted per-count only.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/faults.hpp"
#include "net/sim.hpp"
#include "net/tracing.hpp"
#include "obs/flow.hpp"
#include "obs/latency.hpp"

namespace dcpl::net {
namespace {

constexpr std::uint32_t kClients = 24;
constexpr std::uint32_t kRelays = 4;
constexpr std::uint32_t kRounds = 6;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

constexpr std::uint64_t kFnvSeed = 0xCBF29CE484222325ull;

/// One reception as a node saw it. Sorted multisets of these are the
/// shard-count-independent ground truth. The context id is excluded from
/// the cross-count key: new_context() namespaces ids by shard, so the raw
/// values differ between shard counts by design. Per-count digests still
/// hash contexts, so their bit-stability is covered separately.
struct Reception {
  Time time;
  Address src;
  std::uint64_t context;
  std::string payload;

  auto key() const { return std::tie(time, src, payload); }
  bool operator<(const Reception& o) const { return key() < o.key(); }
  bool operator==(const Reception& o) const { return key() == o.key(); }
};

/// Client i ping-pongs kRounds requests with relay (i % kRelays); payload
/// content depends only on (seed, client, round), so the global event set
/// is a pure function of the workload parameters.
class ClientNode final : public Node {
 public:
  ClientNode(std::uint32_t id, std::uint64_t seed, obs::FlowLedger* ledger)
      : Node("client" + std::to_string(id)),
        id_(id),
        seed_(seed),
        ledger_(ledger) {}

  void kickoff(Simulator& sim) { send_round(sim, 0); }

  void on_packet(const Packet& p, Simulator& sim) override {
    log.push_back({sim.now(), p.src, p.context, to_string(p.payload)});
    if (ledger_ != nullptr) {
      ledger_->record_exposure(address(),
                               core::benign_data(to_string(p.payload)),
                               p.context);
    }
    if (++replies_ < kRounds) send_round(sim, replies_);
  }

  std::vector<Reception> log;

 private:
  void send_round(Simulator& sim, std::uint32_t round) {
    const std::string body =
        "c" + std::to_string(id_) + ".r" + std::to_string(round) + ".s" +
        std::to_string((seed_ * 131 + id_ * 31 + round * 7) % 9973);
    Packet req{address(), "relay" + std::to_string(id_ % kRelays),
               to_bytes(body), sim.new_context(), "pingpong"};
    sim.send(std::move(req), /*extra_delay=*/(id_ % 3) * 100);
  }

  std::uint32_t id_;
  std::uint64_t seed_;
  obs::FlowLedger* ledger_;
  std::uint32_t replies_ = 0;
};

/// Replies to the client and forwards a copy to the sink — every request
/// fans into one same-or-cross-shard reply plus one cross-shard forward.
class RelayNode final : public Node {
 public:
  RelayNode(std::uint32_t id, obs::FlowLedger* ledger)
      : Node("relay" + std::to_string(id)), ledger_(ledger) {}

  void on_packet(const Packet& p, Simulator& sim) override {
    log.push_back({sim.now(), p.src, p.context, to_string(p.payload)});
    if (ledger_ != nullptr) {
      ledger_->record_exposure(address(),
                              core::benign_data(to_string(p.payload)),
                              p.context);
    }
    Packet reply{address(), p.src, p.payload, p.context, "pingpong"};
    sim.send(std::move(reply));
    Packet fwd{address(), "sink", p.payload, p.context, "forward"};
    sim.send(std::move(fwd));
  }

  std::vector<Reception> log;

 private:
  obs::FlowLedger* ledger_;
};

class SinkNode final : public Node {
 public:
  explicit SinkNode(obs::FlowLedger* ledger)
      : Node("sink"), ledger_(ledger) {}

  void on_packet(const Packet& p, Simulator& sim) override {
    log.push_back({sim.now(), p.src, p.context, to_string(p.payload)});
    if (ledger_ != nullptr) {
      ledger_->record_exposure(address(),
                              core::sensitive_data(to_string(p.payload)),
                              p.context);
    }
  }

  std::vector<Reception> log;

 private:
  obs::FlowLedger* ledger_;
};

struct RunOptions {
  std::uint32_t shards = 1;
  std::uint64_t seed = 1;
  bool with_flow = false;
  bool with_window_faults = false;  // deterministic: partition/crash/breach
  bool with_impairments = false;    // stochastic: per-shard RNG streams
  bool with_tracer = false;         // attach a LatencyTracer for the run
  bool auto_affinity = false;       // kMinCut placement instead of id-modulo
};

struct RunResult {
  std::map<Address, std::vector<Reception>> sorted_logs;
  std::size_t packets = 0;
  std::uint64_t bytes = 0;
  Time end = 0;
  FaultStats faults;
  Simulator::ShardRunStats shard_stats;
  // Flow-ledger summary (aggregate view, shard-count independent).
  std::uint64_t flow_exposures = 0;
  std::uint64_t flow_compromises = 0;
  std::uint64_t flow_deduped = 0;
  std::string flow_tuples;
  /// Full bit-level digest: trace order, flow event stream, per-shard
  /// stats. Stable per shard count, NOT across counts.
  std::uint64_t digest = kFnvSeed;
  // Request-tracing plane (with_tracer only). The digest hashes every
  // bucket + min/max of every non-empty e2e recorder keyed by protocol
  // NAME (sharded interning order is thread-timing dependent, so raw
  // ProtocolIds are not cross-count comparable) plus the virtual-time
  // stage recorders. It IS cross-shard-count comparable: latencies are
  // virtual time and bucket adds commute.
  std::uint64_t traced = 0;
  std::uint64_t latency_digest = kFnvSeed;
  std::string latency_summary;  // readable name:count/p50/p99/max list
};

RunResult run_workload(const RunOptions& opt) {
  Simulator sim;
  obs::FlowLedger ledger;
  obs::FlowLedger* flow = opt.with_flow ? &ledger : nullptr;
  if (flow != nullptr) sim.set_flow(flow);
  // Waterfall capture off: span sampling keys on trace sequence numbers,
  // which are engine-specific by design; the recorders are not.
  LatencyTracer tracer(/*waterfall_period=*/0);
  if (opt.with_tracer) sim.set_latency_tracer(&tracer);

  std::vector<std::unique_ptr<ClientNode>> clients;
  std::vector<std::unique_ptr<RelayNode>> relays;
  SinkNode sink(flow);
  for (std::uint32_t r = 0; r < kRelays; ++r) {
    relays.push_back(std::make_unique<RelayNode>(r, flow));
    sim.add_node(*relays.back());
  }
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<ClientNode>(c, opt.seed, flow));
    sim.add_node(*clients.back());
  }
  sim.add_node(sink);

  for (std::uint32_t c = 0; c < kClients; ++c) {
    sim.connect("client" + std::to_string(c),
                "relay" + std::to_string(c % kRelays),
                3000 + (c % 5) * 500);
  }
  for (std::uint32_t r = 0; r < kRelays; ++r) {
    sim.connect("relay" + std::to_string(r), "sink", 2500 + r * 250);
  }

  if (opt.with_window_faults || opt.with_impairments) {
    FaultPlan plan(opt.seed);
    if (opt.with_window_faults) {
      plan.partition("client1", "relay1", 8000, 22000);
      plan.crash("client2", 10000, 30000);
      plan.breach("relay0", 15000);
      plan.breach("sink", 26000);
    }
    if (opt.with_impairments) {
      plan.impair({.loss = 0.05, .duplicate = 0.07, .jitter = 0.20,
                   .jitter_max_us = 900});
    }
    sim.set_fault_plan(std::move(plan));
  }

  sim.set_shards(opt.shards);
  if (opt.auto_affinity) {
    sim.set_auto_affinity(Simulator::AffinityPolicy::kMinCut);
  }
  for (auto& c : clients) c->kickoff(sim);
  const Time end = sim.run();
  if (opt.with_tracer) sim.set_latency_tracer(nullptr);

  RunResult res;
  res.end = end;
  res.packets = sim.packets_delivered();
  res.bytes = sim.bytes_delivered();
  res.faults = sim.fault_stats();
  res.shard_stats = sim.shard_stats();
  for (auto& c : clients) {
    std::sort(c->log.begin(), c->log.end());
    res.sorted_logs[c->address()] = c->log;
  }
  for (auto& r : relays) {
    std::sort(r->log.begin(), r->log.end());
    res.sorted_logs[r->address()] = r->log;
  }
  std::sort(sink.log.begin(), sink.log.end());
  res.sorted_logs[sink.address()] = sink.log;

  std::uint64_t h = kFnvSeed;
  for (const TraceEntry& e : sim.trace()) {
    h = fnv1a_u64(h, e.time);
    h = fnv1a_str(h, e.src);
    h = fnv1a_str(h, e.dst);
    h = fnv1a_u64(h, e.size);
    h = fnv1a_u64(h, e.context);
    h = fnv1a_str(h, e.protocol);
  }
  if (flow != nullptr) {
    res.flow_exposures = ledger.exposures();
    res.flow_compromises = ledger.compromises();
    res.flow_deduped = ledger.deduped();
    std::ostringstream tuples;
    for (const auto& [party, tuple] : ledger.tuples()) {
      tuples << party << "=" << tuple.to_string() << ";";
    }
    res.flow_tuples = tuples.str();
    for (const obs::FlowEvent& ev : ledger.events()) {
      h = fnv1a_u64(h, ev.id);
      h = fnv1a_u64(h, ev.virtual_time);
      h = fnv1a_u64(h, static_cast<std::uint64_t>(ev.kind));
      h = fnv1a_str(h, ev.party);
      h = fnv1a_str(h, ev.atom.label);
      h = fnv1a_u64(h, ev.context);
      h = fnv1a_u64(h, ev.hop_index);
      h = fnv1a_u64(h, ev.parent_id);
      h = fnv1a_str(h, ev.protocol);
    }
  }
  for (const auto& [addr, log] : res.sorted_logs) {
    h = fnv1a_str(h, addr);
    for (const Reception& r : log) {
      h = fnv1a_u64(h, r.time);
      h = fnv1a_str(h, r.src);
      h = fnv1a_u64(h, r.context);
      h = fnv1a_str(h, r.payload);
    }
  }
  h = fnv1a_u64(h, res.end);
  h = fnv1a_u64(h, res.packets);
  h = fnv1a_u64(h, res.bytes);
  h = fnv1a_u64(h, res.faults.lost);
  h = fnv1a_u64(h, res.faults.duplicated);
  h = fnv1a_u64(h, res.faults.jittered);
  h = fnv1a_u64(h, res.faults.partition_dropped);
  h = fnv1a_u64(h, res.faults.offline_dropped);
  h = fnv1a_u64(h, res.faults.breaches_fired);
  for (std::size_t s = 0; s < res.shard_stats.events.size(); ++s) {
    h = fnv1a_u64(h, res.shard_stats.events[s]);
    h = fnv1a_u64(h, res.shard_stats.deliveries[s]);
    h = fnv1a_u64(h, res.shard_stats.cross_sends[s]);
  }
  res.digest = h;

  if (opt.with_tracer) {
    const std::vector<std::string> names = sim.protocol_names();
    std::map<std::string, const obs::LatencyRecorder*> recs;
    for (ProtocolId p = 0;
         p < names.size() && p < LatencyTracer::kMaxProtocols; ++p) {
      if (tracer.e2e(p).count() != 0) recs["e2e:" + names[p]] = &tracer.e2e(p);
    }
    recs["stage:link"] = &tracer.stage_link();
    recs["stage:queue_wait"] = &tracer.stage_queue_wait();
    std::uint64_t lh = kFnvSeed;
    std::ostringstream summary;
    for (const auto& [name, rec] : recs) {
      lh = fnv1a_str(lh, name);
      lh = fnv1a_u64(lh, rec->min());
      lh = fnv1a_u64(lh, rec->max());
      for (std::size_t i = 0; i < obs::LatencyRecorder::kBucketCount; ++i) {
        lh = fnv1a_u64(lh, rec->bucket(i));
      }
      summary << name << "=" << rec->count() << "/" << rec->quantile(0.5)
              << "/" << rec->quantile(0.99) << "/" << rec->max() << ";";
      if (name.rfind("e2e:", 0) == 0) res.traced += rec->count();
    }
    res.latency_digest = lh;
    res.latency_summary = summary.str();
  }
  return res;
}

void expect_same_aggregates(const RunResult& serial, const RunResult& sharded,
                            std::uint32_t shards, std::uint64_t seed) {
  SCOPED_TRACE("shards=" + std::to_string(shards) +
               " seed=" + std::to_string(seed));
  EXPECT_EQ(sharded.end, serial.end);
  EXPECT_EQ(sharded.packets, serial.packets);
  EXPECT_EQ(sharded.bytes, serial.bytes);
  EXPECT_EQ(sharded.faults, serial.faults);
  ASSERT_EQ(sharded.sorted_logs.size(), serial.sorted_logs.size());
  for (const auto& [addr, log] : serial.sorted_logs) {
    auto it = sharded.sorted_logs.find(addr);
    ASSERT_NE(it, sharded.sorted_logs.end()) << addr;
    EXPECT_EQ(it->second, log) << "reception multiset diverged at " << addr;
  }
}

// --- cross-count equivalence ----------------------------------------------

TEST(ShardDeterminism, AggregatesMatchSerialAcrossShardCountsAndSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RunOptions base;
    base.seed = seed;
    base.shards = 1;
    const RunResult serial = run_workload(base);
    ASSERT_GT(serial.packets, 0u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
      RunOptions opt = base;
      opt.shards = shards;
      const RunResult sharded = run_workload(opt);
      expect_same_aggregates(serial, sharded, shards, seed);
      // Structural invariants of the sharded run itself.
      ASSERT_EQ(sharded.shard_stats.shards, shards);
      ASSERT_GT(sharded.shard_stats.lookahead_us, 0u);
      ASSERT_GT(sharded.shard_stats.windows, 0u);
      std::uint64_t deliveries = 0;
      for (auto d : sharded.shard_stats.deliveries) deliveries += d;
      EXPECT_EQ(deliveries, sharded.packets);
    }
  }
}

TEST(ShardDeterminism, WindowFaultsAndBreachesMatchSerial) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RunOptions base;
    base.seed = seed;
    base.with_window_faults = true;
    const RunResult serial = run_workload(base);
    ASSERT_GT(serial.faults.partition_dropped + serial.faults.offline_dropped,
              0u);
    EXPECT_EQ(serial.faults.breaches_fired, 2u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
      RunOptions opt = base;
      opt.shards = shards;
      const RunResult sharded = run_workload(opt);
      expect_same_aggregates(serial, sharded, shards, seed);
    }
  }
}

// The request-tracing plane must not weaken the determinism contract:
// e2e and stage latency percentiles from a sharded run are bit-identical
// to the serial run — and to every other shard count — because recorders
// take commutative bucket adds over virtual-time values that themselves
// match across engines. Compared at the bucket level (strictly stronger
// than comparing the derived percentiles), keyed by protocol name.
TEST(ShardDeterminism, LatencyPercentilesBitIdenticalAcrossShardCounts) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    RunOptions base;
    base.seed = seed;
    base.with_tracer = true;
    const RunResult serial = run_workload(base);
    ASSERT_GT(serial.traced, 0u);
    ASSERT_FALSE(serial.latency_summary.empty());
    for (std::uint32_t shards : {2u, 4u, 8u}) {
      RunOptions opt = base;
      opt.shards = shards;
      const RunResult sharded = run_workload(opt);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " seed=" + std::to_string(seed));
      EXPECT_EQ(sharded.traced, serial.traced);
      EXPECT_EQ(sharded.latency_summary, serial.latency_summary);
      EXPECT_EQ(sharded.latency_digest, serial.latency_digest)
          << "bucket-level divergence despite matching summaries:\n"
          << "serial:  " << serial.latency_summary << "\n"
          << "sharded: " << sharded.latency_summary;
    }
  }
}

// Deterministic window faults (partitions, crashes, breaches) drop and
// delay traffic identically across engines, so traced latencies must stay
// bit-identical under them too.
TEST(ShardDeterminism, LatencyMatchesSerialUnderWindowFaults) {
  RunOptions base;
  base.with_window_faults = true;
  base.with_tracer = true;
  const RunResult serial = run_workload(base);
  ASSERT_GT(serial.traced, 0u);
  for (std::uint32_t shards : {2u, 4u}) {
    RunOptions opt = base;
    opt.shards = shards;
    const RunResult sharded = run_workload(opt);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(sharded.latency_summary, serial.latency_summary);
    EXPECT_EQ(sharded.latency_digest, serial.latency_digest);
  }
}

TEST(ShardDeterminism, FlowLedgerFoldMatchesSerial) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RunOptions base;
    base.seed = seed;
    base.with_flow = true;
    base.with_window_faults = true;
    const RunResult serial = run_workload(base);
    ASSERT_GT(serial.flow_exposures, 0u);
    EXPECT_EQ(serial.flow_compromises, 2u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
      RunOptions opt = base;
      opt.shards = shards;
      const RunResult sharded = run_workload(opt);
      expect_same_aggregates(serial, sharded, shards, seed);
      // The folded knowledge tuples — the paper-facing outcome — are
      // identical whatever the shard count; so are the dedup-exact
      // exposure/compromise totals.
      EXPECT_EQ(sharded.flow_tuples, serial.flow_tuples);
      EXPECT_EQ(sharded.flow_exposures, serial.flow_exposures);
      EXPECT_EQ(sharded.flow_compromises, serial.flow_compromises);
      EXPECT_EQ(sharded.flow_deduped, serial.flow_deduped);
    }
  }
}

// --- per-count bit stability ----------------------------------------------

TEST(ShardDeterminism, BitStableAcrossTenRepetitionsPerShardCount) {
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      RunOptions opt;
      opt.shards = shards;
      opt.seed = seed;
      opt.with_flow = true;
      opt.with_window_faults = true;
      opt.with_impairments = true;  // per-shard RNG streams: per-count only
      const RunResult first = run_workload(opt);
      for (int rep = 1; rep < 10; ++rep) {
        const RunResult again = run_workload(opt);
        ASSERT_EQ(again.digest, first.digest)
            << "shards=" << shards << " seed=" << seed << " rep=" << rep;
      }
    }
  }
}

// --- golden digests -------------------------------------------------------

// Bit-level goldens: the full digest (trace order, flow event ids/parents,
// per-shard stats) for one pinned workload per shard count. A change here
// is a determinism-contract break (merge rule, seq assignment, RNG stream
// layout, replay order) and must be deliberate.
TEST(ShardDeterminism, GoldenDigests) {
  const std::map<std::uint32_t, std::uint64_t> kGolden = {
      // To regenerate after an intentional engine change:
      //   build/tests/test_shard --gtest_filter=ShardDeterminism.GoldenDigests
      // and copy the printed actuals.
      {1u, 0x9BE8FDD2EC29AFE5ull},
      {2u, 0xEDA800ADEE4C530Full},
      {4u, 0x3F9B823471046A84ull},
      {8u, 0xB1BBA4340D818963ull},
  };
  for (const auto& [shards, want] : kGolden) {
    RunOptions opt;
    opt.shards = shards;
    opt.seed = 7;
    opt.with_flow = true;
    opt.with_window_faults = true;
    opt.with_impairments = true;
    const RunResult res = run_workload(opt);
    if (want == 0) {
      printf("golden shards=%u digest=0x%016llXull\n", shards,
             static_cast<unsigned long long>(res.digest));
    }
    EXPECT_EQ(res.digest, want)
        << "shards=" << shards << std::hex << " actual=0x" << res.digest;
  }
}

// --- auto-affinity (min-cut placement) ------------------------------------

// Under set_auto_affinity(kMinCut) the partitioner replaces id-modulo for
// unpinned nodes, but every determinism obligation is unchanged: aggregates
// match serial for any shard count, and a fixed count replays bit-identical.
TEST(ShardDeterminism, AutoAffinityAggregatesMatchSerial) {
  for (std::uint64_t seed : {1ull, 5ull}) {
    RunOptions base;
    base.seed = seed;
    base.shards = 1;
    base.with_flow = true;
    const RunResult serial = run_workload(base);
    ASSERT_GT(serial.packets, 0u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
      RunOptions opt = base;
      opt.shards = shards;
      opt.auto_affinity = true;
      const RunResult sharded = run_workload(opt);
      expect_same_aggregates(serial, sharded, shards, seed);
      EXPECT_EQ(sharded.shard_stats.policy,
                Simulator::AffinityPolicy::kMinCut);
      EXPECT_EQ(sharded.flow_tuples, serial.flow_tuples);
      EXPECT_EQ(sharded.flow_exposures, serial.flow_exposures);
      std::uint64_t deliveries = 0;
      for (auto d : sharded.shard_stats.deliveries) deliveries += d;
      EXPECT_EQ(deliveries, sharded.packets);
    }
  }
}

// Bit-level goldens for the min-cut placement, mirroring GoldenDigests.
// These pin down the partitioner itself as well as the engine: a different
// placement changes shard-local trace interleavings and therefore the
// digest, so any partitioner behavior change shows up here deliberately.
TEST(ShardDeterminism, AutoAffinityGoldenDigests) {
  const std::map<std::uint32_t, std::uint64_t> kGolden = {
      // Regenerate like GoldenDigests: run with a 0 entry and copy actuals.
      // Counts 2 and 4 coincide with the modulo goldens: node interning
      // gives relay r id r and client c id c+4, so id-modulo already lands
      // each client on its relay's shard and min-cut reproduces the exact
      // same placement. At 8 shards modulo scatters the communities and
      // the two policies (and digests) genuinely diverge.
      {2u, 0xEDA800ADEE4C530Full},
      {4u, 0x3F9B823471046A84ull},
      {8u, 0xAF5C7001AF80C138ull},
  };
  for (const auto& [shards, want] : kGolden) {
    RunOptions opt;
    opt.shards = shards;
    opt.seed = 7;
    opt.with_flow = true;
    opt.with_window_faults = true;
    opt.with_impairments = true;
    opt.auto_affinity = true;
    const RunResult first = run_workload(opt);
    const RunResult second = run_workload(opt);
    EXPECT_EQ(first.digest, second.digest)
        << "auto-affinity replay unstable at shards=" << shards;
    if (want == 0) {
      printf("auto golden shards=%u digest=0x%016llXull\n", shards,
             static_cast<unsigned long long>(first.digest));
      continue;
    }
    EXPECT_EQ(first.digest, want)
        << "shards=" << shards << std::hex << " actual=0x" << first.digest;
  }
}

// --- API surface ----------------------------------------------------------

TEST(ShardApi, SetShardsValidation) {
  Simulator sim;
  EXPECT_THROW(sim.set_shards(0), std::invalid_argument);
  sim.set_shards(3);
  EXPECT_EQ(sim.shards(), 3u);
}

TEST(ShardApi, ZeroLookaheadIsRejected) {
  Simulator sim;
  SinkNode a(nullptr);
  Simulator simb;  // separate sim: "sink" name reused
  ClientNode c0(0, 1, nullptr);
  sim.add_node(a);
  sim.add_node(c0);
  // client0 and sink land on different shards (ids 0 and 1 of 2); a
  // zero-latency cross-shard link collapses the conservative window.
  sim.connect("client0", "sink", 0);
  sim.set_shards(2);
  sim.send(Packet{"client0", "sink", to_bytes("x"), 1, "t"});
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(ShardApi, ShardAffinityPinsNodes) {
  Simulator sim;
  SinkNode sink(nullptr);
  RelayNode relay(0, nullptr);
  ClientNode client(0, 1, nullptr);
  sim.add_node(relay);
  sim.add_node(client);
  sim.add_node(sink);
  sim.connect("client0", "relay0", 3000);
  sim.connect("relay0", "sink", 3000);
  sim.set_shards(4);
  // Pin everything to shard 2: all deliveries must land there.
  sim.set_shard_affinity("client0", 2);
  sim.set_shard_affinity("relay0", 2);
  sim.set_shard_affinity("sink", 2);
  client.kickoff(sim);
  sim.run();
  const auto& stats = sim.shard_stats();
  ASSERT_EQ(stats.deliveries.size(), 4u);
  EXPECT_GT(stats.deliveries[2], 0u);
  EXPECT_EQ(stats.deliveries[0] + stats.deliveries[1] + stats.deliveries[3],
            0u);
  std::uint64_t cross = 0;
  for (auto c : stats.cross_sends) cross += c;
  EXPECT_EQ(cross, 0u);  // co-pinned chatter never crosses a mailbox
}

TEST(ShardApi, SerialRunLeavesShardStatsEmptyAndSharedQueueReusable) {
  RunOptions opt;  // shards = 1: serial path
  const RunResult res = run_workload(opt);
  EXPECT_EQ(res.shard_stats.shards, 0u);  // never populated by serial runs
  EXPECT_GT(res.packets, 0u);
}

// --- zero-copy wire path (DESIGN.md §14) ----------------------------------

// Records the heap address of every delivered buffer and forwards the
// buffer itself (detach + send) rather than a copy.
class TapRelay final : public Node {
 public:
  TapRelay(std::string name, Address next, std::size_t trim = 0)
      : Node(std::move(name)), next_(std::move(next)), trim_(trim) {}

  void on_packet(const Packet& p, Simulator& sim) override {
    seen.push_back(p.payload.data());
    if (trim_ > 0 && p.payload.size() >= trim_) {
      Bytes trimmed = sim.detach_payload(p.payload.size() - trim_);
      sim.send(Packet{address(), next_, std::move(trimmed), p.context, "fwd"});
    } else {
      sim.forward(address(), next_, p.context, "fwd");
    }
  }

  std::vector<const std::uint8_t*> seen;

 private:
  Address next_;
  std::size_t trim_;
};

class TapSink final : public Node {
 public:
  explicit TapSink(std::string name) : Node(std::move(name)) {}

  void on_packet(const Packet& p, Simulator&) override {
    seen.push_back(p.payload.data());
    payloads.push_back(p.payload);
  }

  std::vector<const std::uint8_t*> seen;
  std::vector<Bytes> payloads;
};

Bytes big_payload(std::uint8_t tag) {
  Bytes b(512);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(tag + i);
  }
  return b;
}

// The acceptance check for the zero-copy wire path: the exact heap buffer a
// relay received is the one the next hop receives — through the serial
// engine, and through the shard mailbox when the forward crosses shards.
// (If any hop deep-copied, the sink would see a different allocation while
// the original stayed alive in the source pool, so pointer equality is a
// sound no-copy witness.)
TEST(ZeroCopyWire, ForwardMovesBufferSerial) {
  Simulator sim;
  TapRelay relay("relay", "sink");
  TapSink sink("sink");
  sim.add_node(relay);
  sim.add_node(sink);
  sim.connect("origin", "relay", 1000);
  sim.connect("relay", "sink", 1000);

  const Bytes body = big_payload(7);
  sim.send(Packet{"origin", "relay", body, 1, "fwd"});
  sim.run();

  ASSERT_EQ(relay.seen.size(), 1u);
  ASSERT_EQ(sink.seen.size(), 1u);
  EXPECT_EQ(sink.seen[0], relay.seen[0]) << "forward copied the payload";
  EXPECT_EQ(sink.payloads[0], body);
  // Pool accounting: every slot drained back once the run finished.
  EXPECT_EQ(sim.payload_pool().live(), 0u);
}

TEST(ZeroCopyWire, ForwardMovesBufferAcrossShardMailbox) {
  Simulator sim;
  TapRelay relay("relay", "sink");
  TapSink sink("sink");
  sim.add_node(relay);
  sim.add_node(sink);
  sim.connect("origin", "relay", 1000);
  sim.connect("relay", "sink", 1000);
  sim.set_shards(2);
  sim.set_shard_affinity("relay", 0);
  sim.set_shard_affinity("sink", 1);  // forward must cross the mailbox

  const Bytes body = big_payload(11);
  sim.send(Packet{"origin", "relay", body, 1, "fwd"});
  sim.run();

  ASSERT_EQ(relay.seen.size(), 1u);
  ASSERT_EQ(sink.seen.size(), 1u);
  EXPECT_EQ(sink.seen[0], relay.seen[0])
      << "cross-shard send deep-copied the payload";
  EXPECT_EQ(sink.payloads[0], body);
}

// Trimmed detach (mix-style onion shrink): shrinking never reallocates, so
// the sink still sees the same buffer, minus the tail.
TEST(ZeroCopyWire, DetachPrefixKeepsAllocation) {
  Simulator sim;
  TapRelay relay("relay", "sink", /*trim=*/16);
  TapSink sink("sink");
  sim.add_node(relay);
  sim.add_node(sink);
  sim.connect("origin", "relay", 1000);
  sim.connect("relay", "sink", 1000);

  const Bytes body = big_payload(3);
  sim.send(Packet{"origin", "relay", body, 1, "fwd"});
  sim.run();

  ASSERT_EQ(sink.seen.size(), 1u);
  EXPECT_EQ(sink.seen[0], relay.seen[0]);
  Bytes want(body.begin(), body.end() - 16);
  EXPECT_EQ(sink.payloads[0], want);
  EXPECT_EQ(sim.payload_pool().live(), 0u);
}

// Fault duplication shares one slot between two deliveries: the first
// detach sees refs > 1 and must copy, the second may steal. Both hops must
// still deliver intact bytes and the pool must drain.
TEST(ZeroCopyWire, DetachUnderFaultDuplicationStaysCorrect) {
  Simulator sim;
  TapRelay relay("relay", "sink");
  TapSink sink("sink");
  sim.add_node(relay);
  sim.add_node(sink);
  sim.connect("origin", "relay", 1000);
  sim.connect("relay", "sink", 1000);
  FaultPlan plan(9);
  plan.impair({.duplicate = 1.0});
  sim.set_fault_plan(std::move(plan));

  const Bytes body = big_payload(5);
  sim.send(Packet{"origin", "relay", body, 1, "fwd"});
  sim.run();

  // origin->relay duplicated, and each forward duplicated again.
  ASSERT_EQ(relay.seen.size(), 2u);
  ASSERT_EQ(sink.seen.size(), 4u);
  for (const Bytes& got : sink.payloads) EXPECT_EQ(got, body);
  EXPECT_EQ(sim.payload_pool().live(), 0u);
}

TEST(ZeroCopyWire, DetachOutsideDeliveryThrows) {
  Simulator sim;
  EXPECT_THROW(sim.detach_payload(), std::logic_error);
}

// send_shared references one pooled slot per send instead of copying: the
// slot's refcount, not its count of allocations, tracks the fan-out.
TEST(ZeroCopyWire, SendSharedAddsReferencesNotCopies) {
  Simulator sim;
  TapSink a("sink-a");
  TapSink b("sink-b");
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("origin", "sink-a", 1000);
  sim.connect("origin", "sink-b", 1000);

  PayloadRef wire = sim.make_payload(big_payload(1));
  EXPECT_EQ(sim.payload_pool().refs(wire.handle()), 1u);
  sim.send_shared("origin", "sink-a", wire, 1, "shared");
  sim.send_shared("origin", "sink-b", wire, 2, "shared");
  // One reference per queued delivery plus the caller's: no new slots.
  EXPECT_EQ(sim.payload_pool().refs(wire.handle()), 3u);
  EXPECT_EQ(sim.payload_pool().live(), 1u);
  sim.run();
  ASSERT_EQ(a.payloads.size(), 1u);
  ASSERT_EQ(b.payloads.size(), 1u);
  wire.reset();
  EXPECT_EQ(sim.payload_pool().live(), 0u);
}

// A node fanning out via make_payload + send_shared from inside on_packet
// exercises the sharded shard-local share (no copy) and cross-pool copy
// branches; receptions must match the serial engine either way.
class SharedFanRelay final : public Node {
 public:
  SharedFanRelay(std::string name, std::vector<Address> dests)
      : Node(std::move(name)), dests_(std::move(dests)) {}

  void on_packet(const Packet& p, Simulator& sim) override {
    PayloadRef wire = sim.make_payload(p.payload);
    for (std::size_t i = 0; i < dests_.size(); ++i) {
      sim.send_shared(address(), dests_[i], wire, p.context, "shared");
    }
  }

 private:
  std::vector<Address> dests_;
};

TEST(ZeroCopyWire, ShardedSendSharedMatchesSerial) {
  auto run = [](std::uint32_t shards) {
    Simulator sim;
    SharedFanRelay relay("relay", {"sink-a", "sink-b", "sink-c"});
    TapSink a("sink-a"), b("sink-b"), c("sink-c");
    sim.add_node(relay);
    sim.add_node(a);
    sim.add_node(b);
    sim.add_node(c);
    sim.connect("origin", "relay", 1000);
    sim.connect("relay", "sink-a", 1000);
    sim.connect("relay", "sink-b", 1500);
    sim.connect("relay", "sink-c", 2000);
    if (shards > 1) {
      sim.set_shards(shards);
      // Same shard as the relay (share path) and a different one (copy).
      sim.set_shard_affinity("relay", 0);
      sim.set_shard_affinity("sink-a", 0);
      sim.set_shard_affinity("sink-b", 0);
      sim.set_shard_affinity("sink-c", 1);
    }
    sim.send(Packet{"origin", "relay", big_payload(9), 1, "fwd"});
    sim.run();
    std::vector<Bytes> got;
    for (const TapSink* s : {&a, &b, &c}) {
      for (const Bytes& x : s->payloads) got.push_back(x);
    }
    return got;
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
}

}  // namespace
}  // namespace dcpl::net
