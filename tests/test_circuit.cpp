// Onion-routing circuits: telescoping build, layered streams, constant-size
// cells (§4.3), and per-hop knowledge.
#include "systems/mixnet/circuit.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::mixnet {
namespace {

/// Destination server: echoes "echo:" + payload.
class EchoServer final : public net::Node {
 public:
  EchoServer(net::Address address, core::ObservationLog& log,
             const core::AddressBook& book)
      : Node(std::move(address)), log_(&log), book_(&book) {}

  void on_packet(const net::Packet& p, net::Simulator& sim) override {
    book_->observe_src(*log_, address(), p.src, p.context);
    log_->observe(address(),
                  core::sensitive_data("request:" + to_string(p.payload)),
                  p.context);
    ++requests_;
    Bytes reply = concat({to_bytes("echo:"), p.payload});
    sim.send(net::Packet{address(), p.src, std::move(reply), p.context,
                         "tcp"});
  }

  std::size_t requests() const { return requests_; }

 private:
  std::size_t requests_ = 0;
  core::ObservationLog* log_;
  const core::AddressBook* book_;
};

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::vector<std::unique_ptr<CircuitRelay>> relays;
  std::unique_ptr<EchoServer> server;
  std::unique_ptr<CircuitClient> client;

  explicit Fixture(std::size_t n_relays) {
    for (std::size_t i = 0; i < n_relays; ++i) {
      std::string addr = "or" + std::to_string(i + 1);
      book.set(addr, core::benign_identity("addr:" + addr));
      relays.push_back(std::make_unique<CircuitRelay>(addr, log, book, 10 + i));
      sim.add_node(*relays.back());
    }
    book.set("web.example", core::benign_identity("addr:web.example"));
    server = std::make_unique<EchoServer>("web.example", log, book);
    sim.add_node(*server);
    book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));
    client = std::make_unique<CircuitClient>("10.0.0.1", "user:alice", log, 42);
    sim.add_node(*client);
  }

  std::vector<CircuitClient::HopDescriptor> path() const {
    std::vector<CircuitClient::HopDescriptor> out;
    for (const auto& r : relays) {
      out.push_back({r->address(), r->key().public_key});
    }
    return out;
  }

  bool build() {
    bool ok = false;
    client->build_circuit(path(), sim, [&](bool b) { ok = b; });
    sim.run();
    return ok && client->built();
  }
};

TEST(Circuit, BuildsThreeHops) {
  Fixture f(3);
  EXPECT_TRUE(f.build());
  EXPECT_EQ(f.client->hops(), 3u);
  for (auto& r : f.relays) EXPECT_EQ(r->circuits_active(), 1u);
}

class CircuitPathLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CircuitPathLengths, BuildAndEcho) {
  Fixture f(GetParam());
  ASSERT_TRUE(f.build());
  std::string got;
  ASSERT_TRUE(f.client->send_data(
      "web.example", to_bytes("ping"), f.sim,
      [&](const Bytes& resp) { got = to_string(resp); }));
  f.sim.run();
  EXPECT_EQ(got, "echo:ping");
  EXPECT_EQ(f.server->requests(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CircuitPathLengths,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Circuit, MultipleStreamsOnOneCircuit) {
  Fixture f(3);
  ASSERT_TRUE(f.build());
  int got = 0;
  for (int i = 0; i < 5; ++i) {
    f.client->send_data("web.example", to_bytes("req" + std::to_string(i)),
                        f.sim, [&, i](const Bytes& resp) {
                          EXPECT_EQ(to_string(resp),
                                    "echo:req" + std::to_string(i));
                          ++got;
                        });
  }
  f.sim.run();
  EXPECT_EQ(got, 5);
}

TEST(Circuit, SendBeforeBuildFails) {
  Fixture f(2);
  EXPECT_FALSE(f.client->send_data("web.example", to_bytes("x"), f.sim,
                                   nullptr));
}

TEST(Circuit, EmptyPathThrows) {
  Fixture f(1);
  EXPECT_THROW(f.client->build_circuit({}, f.sim, nullptr),
               std::invalid_argument);
}

// §4.3: every circuit-protocol packet on every link is exactly kCellSize —
// an observer cannot fingerprint position in the path or payload size.
TEST(Circuit, AllCellsAreConstantSize) {
  Fixture f(3);
  std::vector<std::size_t> circuit_sizes;
  f.sim.add_wiretap([&](const net::TraceEntry& e) {
    if (e.protocol == "circuit") circuit_sizes.push_back(e.size);
  });
  ASSERT_TRUE(f.build());
  f.client->send_data("web.example", to_bytes("short"), f.sim, nullptr);
  f.client->send_data("web.example", Bytes(200, 'x'), f.sim, nullptr);
  f.sim.run();

  ASSERT_GT(circuit_sizes.size(), 10u);
  for (std::size_t s : circuit_sizes) EXPECT_EQ(s, kCellSize);
}

TEST(Circuit, KnowledgeMatchesOnionRoutingTable) {
  Fixture f(3);
  ASSERT_TRUE(f.build());
  f.client->send_data("web.example", to_bytes("secret request"), f.sim,
                      nullptr);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  // Guard: knows the client, sees only cells.
  EXPECT_EQ(a.tuple_for("or1").to_string(), "(▲, ⊙)");
  // Middle: knows neither end.
  EXPECT_EQ(a.tuple_for("or2").to_string(), "(△, ⊙)");
  // Exit: learns the destination (the ⊙/● cell), not the client.
  EXPECT_EQ(a.tuple_for("or3").to_string(), "(△, ⊙/●)");
  // The destination sees the request from the exit.
  EXPECT_EQ(a.tuple_for("web.example").to_string(), "(△, ●)");
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
}

TEST(Circuit, MiddleRelayNeverSeesClientOrDestination) {
  Fixture f(3);
  ASSERT_TRUE(f.build());
  f.client->send_data("web.example", to_bytes("needle"), f.sim, nullptr);
  f.sim.run();
  for (const auto& obs : f.log.for_party("or2")) {
    EXPECT_EQ(obs.atom.label.find("10.0.0.1"), std::string::npos);
    EXPECT_EQ(obs.atom.label.find("web.example"), std::string::npos);
    EXPECT_EQ(obs.atom.label.find("needle"), std::string::npos);
  }
}

TEST(Circuit, WrongGuardKeyFailsBuild) {
  Fixture f(2);
  crypto::ChaChaRng rng(9);
  auto bogus = hpke::KeyPair::generate(rng);
  auto path = f.path();
  path[0].public_key = bogus.public_key;
  bool ok = false;
  f.client->build_circuit(path, f.sim, [&](bool b) { ok = b; });
  f.sim.run();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(f.client->built());
}

TEST(Circuit, WrongExtendKeyFailsBuild) {
  Fixture f(3);
  crypto::ChaChaRng rng(9);
  auto bogus = hpke::KeyPair::generate(rng);
  auto path = f.path();
  path[2].public_key = bogus.public_key;
  bool called = false;
  f.client->build_circuit(path, f.sim, [&](bool) { called = true; });
  f.sim.run();
  EXPECT_FALSE(f.client->built());
  EXPECT_FALSE(called);
}

TEST(Circuit, GarbageCellsDropped) {
  Fixture f(1);
  ASSERT_TRUE(f.build());
  // Random cell-sized junk and a truncated cell.
  f.sim.send(net::Packet{"10.0.0.1", "or1", Bytes(kCellSize, 0xab),
                         f.sim.new_context(), "circuit"});
  f.sim.send(net::Packet{"10.0.0.1", "or1", Bytes(17, 0xab),
                         f.sim.new_context(), "circuit"});
  f.sim.run();
  // The relay survives and the circuit still works.
  std::string got;
  f.client->send_data("web.example", to_bytes("still alive"), f.sim,
                      [&](const Bytes& r) { got = to_string(r); });
  f.sim.run();
  EXPECT_EQ(got, "echo:still alive");
}

TEST(Circuit, TwoClientsShareRelays) {
  Fixture f(3);
  f.book.set("10.0.0.2", core::sensitive_identity("user:bob", "network"));
  CircuitClient bob("10.0.0.2", "user:bob", f.log, 77);
  f.sim.add_node(bob);

  ASSERT_TRUE(f.build());
  bool bob_ok = false;
  bob.build_circuit(f.path(), f.sim, [&](bool b) { bob_ok = b; });
  f.sim.run();
  ASSERT_TRUE(bob_ok);
  for (auto& r : f.relays) EXPECT_EQ(r->circuits_active(), 2u);

  std::string a_got, b_got;
  f.client->send_data("web.example", to_bytes("from-alice"), f.sim,
                      [&](const Bytes& r) { a_got = to_string(r); });
  bob.send_data("web.example", to_bytes("from-bob"), f.sim,
                [&](const Bytes& r) { b_got = to_string(r); });
  f.sim.run();
  EXPECT_EQ(a_got, "echo:from-alice");
  EXPECT_EQ(b_got, "echo:from-bob");
}

}  // namespace
}  // namespace dcpl::systems::mixnet
