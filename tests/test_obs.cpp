// Tests for the observability layer: metrics registry (counter/gauge/
// histogram quantiles, scopes, snapshot/reset), the minimal JSON writer/
// parser, and span tracing including the Chrome trace-event schema and the
// simulator's virtual-time track.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/sim.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dcpl {
namespace {

// ---- JSON -----------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string("nul\x01", 4)), "nul\\u0001");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(obs::json_escape("§4.3 — ▲"), "§4.3 — ▲");
}

TEST(Json, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "bench \"x\"\n");
  w.kv("ok", true);
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 0.125);
  w.key("items");
  w.begin_array();
  w.value(1);
  w.value(-2);
  w.begin_object();
  w.kv("nested", false);
  w.end_object();
  w.end_array();
  w.key("empty");
  w.begin_object();
  w.end_object();
  w.end_object();

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").string, "bench \"x\"\n");
  EXPECT_TRUE(v.at("ok").boolean);
  EXPECT_EQ(v.at("count").number, 42.0);
  EXPECT_EQ(v.at("ratio").number, 0.125);
  ASSERT_EQ(v.at("items").array.size(), 3u);
  EXPECT_EQ(v.at("items").array[1].number, -2.0);
  EXPECT_FALSE(v.at("items").array[2].at("nested").boolean);
  EXPECT_TRUE(v.at("empty").object.empty());
}

TEST(Json, ParserRejectsMalformedInput) {
  obs::JsonValue v;
  EXPECT_FALSE(obs::JsonParser::parse("{", v));
  EXPECT_FALSE(obs::JsonParser::parse("{\"a\":}", v));
  EXPECT_FALSE(obs::JsonParser::parse("[1,]", v));
  EXPECT_FALSE(obs::JsonParser::parse("\"unterminated", v));
  EXPECT_FALSE(obs::JsonParser::parse("{} trailing", v));
}

// ---- Metrics --------------------------------------------------------------

TEST(Metrics, CounterIdentityAndLabels) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("packets");
  obs::Counter& b = reg.counter("packets");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same handle
  a.inc();
  a.inc(9);
  EXPECT_EQ(b.value(), 10u);

  obs::Counter& labeled = reg.counter("packets", {{"link", "a->b"}});
  EXPECT_NE(&a, &labeled);
  labeled.inc(3);
  EXPECT_EQ(a.value(), 10u);
  EXPECT_EQ(labeled.value(), 3u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue_depth");
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3.0);
}

TEST(Metrics, GaugeTracksHighWatermark) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue_depth");
  EXPECT_EQ(g.peak(), 0.0);
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.peak(), 5.0);  // the drop doesn't erase the high-watermark
  g.add(7);                  // 2 + 7 = 9: new peak via add()
  EXPECT_EQ(g.peak(), 9.0);
  g.add(-4);
  EXPECT_EQ(g.value(), 5.0);
  EXPECT_EQ(g.peak(), 9.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.peak(), 0.0);
}

TEST(Metrics, CounterHandleFollowsTheRegistryItIsHanded) {
  obs::Registry reg_a, reg_b;
  obs::CounterHandle handle("retry", "sends");
  handle.in(reg_a).inc();
  handle.in(reg_a).inc();
  EXPECT_EQ(reg_a.scope("retry").counter("sends").value(), 2u);

  // Handing a different registry re-resolves; the old one stays frozen.
  handle.in(reg_b).inc(5);
  EXPECT_EQ(reg_b.scope("retry").counter("sends").value(), 5u);
  EXPECT_EQ(reg_a.scope("retry").counter("sends").value(), 2u);

  // Swapping back re-binds to the original counter, preserving its value.
  handle.in(reg_a).inc();
  EXPECT_EQ(reg_a.scope("retry").counter("sends").value(), 3u);

  // A scope-less handle resolves at the registry root.
  obs::CounterHandle root_handle("", "events");
  root_handle.in(reg_a).inc();
  EXPECT_EQ(reg_a.counter("events").value(), 1u);
}

TEST(Metrics, HistogramQuantilesUniform) {
  // 100 observations 1..100 into decade-ish buckets: the interpolated
  // quantiles should land near the exact order statistics.
  obs::Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 10.0);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Metrics, HistogramOverflowBucketReportsMax) {
  obs::Histogram h({1.0});  // everything above 1 overflows
  h.observe(5000);
  h.observe(9000);
  EXPECT_EQ(h.quantile(0.99), 9000.0);
}

TEST(Metrics, HistogramEmptyIsZero) {
  obs::Histogram h(obs::Histogram::default_bounds());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Metrics, ScopedSnapshotAndReset) {
  obs::Registry reg;
  reg.counter("top").inc(7);
  reg.scope("sim").counter("packets").inc(2);
  reg.scope("sim").gauge("depth").set(4);
  reg.scope("sim").histogram("lat").observe(10);

  obs::Snapshot snap = reg.snapshot();
  const obs::SnapshotEntry* top = snap.find("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->value, 7.0);
  const obs::SnapshotEntry* pk = snap.find("sim.packets");
  ASSERT_NE(pk, nullptr);  // child metrics appear scope-qualified
  EXPECT_EQ(pk->value, 2.0);
  ASSERT_NE(snap.find("sim.depth"), nullptr);
  const obs::SnapshotEntry* lat = snap.find("sim.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->value, 1.0);  // histogram count
  EXPECT_EQ(lat->min, 10.0);

  // reset() zeroes the whole subtree without invalidating handles.
  obs::Counter& handle = reg.scope("sim").counter("packets");
  reg.reset();
  EXPECT_EQ(handle.value(), 0u);
  EXPECT_EQ(reg.counter("top").value(), 0u);
  handle.inc();
  EXPECT_EQ(reg.scope("sim").counter("packets").value(), 1u);
}

TEST(Metrics, RegistryJsonIsParseable) {
  obs::Registry reg;
  reg.counter("ops", {{"kind", "seal"}}).inc(5);
  reg.scope("sub").histogram("h").observe(3);
  obs::JsonWriter w;
  reg.write_json(w);
  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.has("ops{kind=seal}"));
  EXPECT_EQ(v.at("ops{kind=seal}").number, 5.0);
  ASSERT_TRUE(v.has("sub.h"));
  EXPECT_EQ(v.at("sub.h").at("count").number, 1.0);
}

// ---- Tracing --------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer t;
  {
    obs::Span s(t, "ignored");
    s.arg("k", "v");
  }
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, ChromeTraceEventSchema) {
  obs::Tracer t;
  t.enable();
  t.set_virtual_clock([] { return std::uint64_t{123}; });
  {
    obs::Span s(t, "phase.one", "proto");
    s.arg("party", "relay");
  }
  t.clear_virtual_clock();
  { obs::Span s(t, "phase.two"); }
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_TRUE(t.events()[0].has_virtual);
  EXPECT_EQ(t.events()[0].vts_us, 123u);
  EXPECT_FALSE(t.events()[1].has_virtual);

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(t.to_chrome_json(), v));
  const obs::JsonValue& events = v.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  std::size_t spans = 0;
  for (const auto& e : events.array) {
    if (e.at("ph").string == "M") continue;  // process_name metadata
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    ++spans;
  }
  // phase.one appears on both the wall (pid 1) and virtual (pid 2) tracks.
  EXPECT_GE(spans, 3u);
}

// Driving a Simulator with a tracer attached must yield a non-empty
// Perfetto-compatible trace whose delivery spans carry virtual time.
TEST(Trace, SimulatorRunProducesVirtualTimeTrace) {
  class Sink final : public net::Node {
   public:
    using Node::Node;
    void on_packet(const net::Packet&, net::Simulator&) override {}
  };

  obs::Tracer tracer;
  tracer.enable();
  obs::Registry metrics;

  net::Simulator sim;
  sim.set_tracer(tracer);
  sim.set_metrics(metrics);
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 1000);
  sim.at(5, [&] {
    sim.send(net::Packet{"a", "b", Bytes(64, 0xab), 1, "test"});
  });
  sim.run();

  ASSERT_FALSE(tracer.events().empty());
  bool saw_delivery = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "deliver:test") {
      saw_delivery = true;
      EXPECT_TRUE(e.has_virtual);
      EXPECT_EQ(e.vts_us, 1005u);  // sent at t=5 over a 1000us link
    }
  }
  EXPECT_TRUE(saw_delivery);

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(tracer.to_chrome_json(), v));
  EXPECT_FALSE(v.at("traceEvents").array.empty());

  // The redirected registry saw the delivery too.
  obs::Snapshot snap = metrics.snapshot();
  const obs::SnapshotEntry* pk = snap.find("packets_delivered");
  ASSERT_NE(pk, nullptr);
  EXPECT_EQ(pk->value, 1.0);
  const obs::SnapshotEntry* by = snap.find("bytes_delivered");
  ASSERT_NE(by, nullptr);
  EXPECT_EQ(by->value, 64.0);
}

}  // namespace
}  // namespace dcpl
