// Tests for the observability layer: metrics registry (counter/gauge/
// histogram quantiles, scopes, snapshot/reset), the minimal JSON writer/
// parser, span tracing including the Chrome trace-event schema and the
// simulator's virtual-time track, and the log-bucketed LatencyRecorder
// behind the request-tracing plane.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/sim.hpp"
#include "obs/json.hpp"
#include "obs/latency.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace dcpl {
namespace {

// ---- JSON -----------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string("nul\x01", 4)), "nul\\u0001");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(obs::json_escape("§4.3 — ▲"), "§4.3 — ▲");
}

TEST(Json, EscapesInvalidUtf8AsByteEscapes) {
  // Lone continuation byte, truncated 2-byte lead, overlong encoding of
  // '/': none of these may pass through raw (the output must stay valid
  // UTF-8 JSON), so each invalid byte becomes \u00XX.
  EXPECT_EQ(obs::json_escape("\x80"), "\\u0080");
  EXPECT_EQ(obs::json_escape("a\xC3"), "a\\u00c3");
  EXPECT_EQ(obs::json_escape("\xC0\xAF"), "\\u00c0\\u00af");
  // A valid sequence right after an invalid byte still passes through.
  EXPECT_EQ(obs::json_escape("\xFF▲"), "\\u00ff▲");
}

TEST(Json, AllByteValuesRoundTripThroughWriterAndParser) {
  std::string all;
  for (int c = 0; c < 256; ++c) all += static_cast<char>(c);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bytes", all);
  w.end_object();

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  EXPECT_EQ(v.at("bytes").string, all);  // lossless: every byte 0x00..0xFF
}

TEST(Json, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "bench \"x\"\n");
  w.kv("ok", true);
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 0.125);
  w.key("items");
  w.begin_array();
  w.value(1);
  w.value(-2);
  w.begin_object();
  w.kv("nested", false);
  w.end_object();
  w.end_array();
  w.key("empty");
  w.begin_object();
  w.end_object();
  w.end_object();

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").string, "bench \"x\"\n");
  EXPECT_TRUE(v.at("ok").boolean);
  EXPECT_EQ(v.at("count").number, 42.0);
  EXPECT_EQ(v.at("ratio").number, 0.125);
  ASSERT_EQ(v.at("items").array.size(), 3u);
  EXPECT_EQ(v.at("items").array[1].number, -2.0);
  EXPECT_FALSE(v.at("items").array[2].at("nested").boolean);
  EXPECT_TRUE(v.at("empty").object.empty());
}

TEST(Json, ParserRejectsMalformedInput) {
  obs::JsonValue v;
  EXPECT_FALSE(obs::JsonParser::parse("{", v));
  EXPECT_FALSE(obs::JsonParser::parse("{\"a\":}", v));
  EXPECT_FALSE(obs::JsonParser::parse("[1,]", v));
  EXPECT_FALSE(obs::JsonParser::parse("\"unterminated", v));
  EXPECT_FALSE(obs::JsonParser::parse("{} trailing", v));
}

// ---- Metrics --------------------------------------------------------------

TEST(Metrics, CounterIdentityAndLabels) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("packets");
  obs::Counter& b = reg.counter("packets");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same handle
  a.inc();
  a.inc(9);
  EXPECT_EQ(b.value(), 10u);

  obs::Counter& labeled = reg.counter("packets", {{"link", "a->b"}});
  EXPECT_NE(&a, &labeled);
  labeled.inc(3);
  EXPECT_EQ(a.value(), 10u);
  EXPECT_EQ(labeled.value(), 3u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue_depth");
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3.0);
}

TEST(Metrics, GaugeTracksHighWatermark) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue_depth");
  EXPECT_EQ(g.peak(), 0.0);
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.peak(), 5.0);  // the drop doesn't erase the high-watermark
  g.add(7);                  // 2 + 7 = 9: new peak via add()
  EXPECT_EQ(g.peak(), 9.0);
  g.add(-4);
  EXPECT_EQ(g.value(), 5.0);
  EXPECT_EQ(g.peak(), 9.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.peak(), 0.0);
}

TEST(Metrics, CounterHandleFollowsTheRegistryItIsHanded) {
  obs::Registry reg_a, reg_b;
  obs::CounterHandle handle("retry", "sends");
  handle.in(reg_a).inc();
  handle.in(reg_a).inc();
  EXPECT_EQ(reg_a.scope("retry").counter("sends").value(), 2u);

  // Handing a different registry re-resolves; the old one stays frozen.
  handle.in(reg_b).inc(5);
  EXPECT_EQ(reg_b.scope("retry").counter("sends").value(), 5u);
  EXPECT_EQ(reg_a.scope("retry").counter("sends").value(), 2u);

  // Swapping back re-binds to the original counter, preserving its value.
  handle.in(reg_a).inc();
  EXPECT_EQ(reg_a.scope("retry").counter("sends").value(), 3u);

  // A scope-less handle resolves at the registry root.
  obs::CounterHandle root_handle("", "events");
  root_handle.in(reg_a).inc();
  EXPECT_EQ(reg_a.counter("events").value(), 1u);
}

TEST(Metrics, CounterAndGaugeAreThreadSafe) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("hits");
  obs::Gauge& g = reg.gauge("depth");
  constexpr int kThreads = 4;
  constexpr int kIncs = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &g] {
      for (int i = 0; i < kIncs; ++i) {
        c.inc();
        g.add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  // Atomic counters: no lost updates under concurrent increment (the
  // pre-fix counters dropped updates here and raced under TSan).
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
  EXPECT_EQ(g.value(), static_cast<double>(kThreads * kIncs));
  EXPECT_EQ(g.peak(), static_cast<double>(kThreads * kIncs));
}

TEST(Metrics, OpCounterRebindsAfterRegistrySwap) {
  // Regression: a `static Counter&` bound at first call kept counting into
  // a swapped-out registry. OpCounter must follow the active registry.
  obs::OpCounter ops("swaptest", "ops");
  const std::uint64_t global_before =
      obs::op_counter("swaptest", "ops").value();
  ops.inc();  // binds to the currently active (global) registry
  EXPECT_EQ(obs::op_counter("swaptest", "ops").value(), global_before + 1);

  obs::Registry sandbox;
  obs::Registry* prev = obs::set_op_registry(&sandbox);
  ops.inc(4);  // must land in the sandbox, not the stale binding
  EXPECT_EQ(sandbox.scope("swaptest").counter("ops").value(), 4u);

  obs::set_op_registry(prev);
  ops.inc();  // and follow the swap back
  EXPECT_EQ(obs::op_counter("swaptest", "ops").value(), global_before + 2);
  EXPECT_EQ(sandbox.scope("swaptest").counter("ops").value(), 4u);
}

TEST(Metrics, OpCounterSurvivesConcurrentSwaps) {
  // Shard threads increment while a bench harness swaps registries: every
  // increment must land in exactly one registry (none lost, none doubled),
  // and TSan must stay quiet.
  obs::OpCounter ops("swapstress", "ops");
  const std::uint64_t global_before =
      obs::op_counter("swapstress", "ops").value();
  obs::Registry sandbox;
  constexpr int kThreads = 3;
  constexpr int kIncs = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ops] {
      for (int i = 0; i < kIncs; ++i) ops.inc();
    });
  }
  for (int swap = 0; swap < 200; ++swap) {
    obs::Registry* prev = obs::set_op_registry(&sandbox);
    obs::set_op_registry(prev);
  }
  for (auto& w : workers) w.join();
  const std::uint64_t in_global =
      obs::op_counter("swapstress", "ops").value() - global_before;
  const std::uint64_t in_sandbox =
      sandbox.scope("swapstress").counter("ops").value();
  EXPECT_EQ(in_global + in_sandbox,
            static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Metrics, HistogramQuantilesUniform) {
  // 100 observations 1..100 into decade-ish buckets: the interpolated
  // quantiles should land near the exact order statistics.
  obs::Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 10.0);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Metrics, HistogramOverflowBucketReportsMax) {
  obs::Histogram h({1.0});  // everything above 1 overflows
  h.observe(5000);
  h.observe(9000);
  EXPECT_EQ(h.quantile(0.99), 9000.0);
}

TEST(Metrics, HistogramEmptyIsZero) {
  obs::Histogram h(obs::Histogram::default_bounds());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Metrics, ScopedSnapshotAndReset) {
  obs::Registry reg;
  reg.counter("top").inc(7);
  reg.scope("sim").counter("packets").inc(2);
  reg.scope("sim").gauge("depth").set(4);
  reg.scope("sim").histogram("lat").observe(10);

  obs::Snapshot snap = reg.snapshot();
  const obs::SnapshotEntry* top = snap.find("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->value, 7.0);
  const obs::SnapshotEntry* pk = snap.find("sim.packets");
  ASSERT_NE(pk, nullptr);  // child metrics appear scope-qualified
  EXPECT_EQ(pk->value, 2.0);
  ASSERT_NE(snap.find("sim.depth"), nullptr);
  const obs::SnapshotEntry* lat = snap.find("sim.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->value, 1.0);  // histogram count
  EXPECT_EQ(lat->min, 10.0);

  // reset() zeroes the whole subtree without invalidating handles.
  obs::Counter& handle = reg.scope("sim").counter("packets");
  reg.reset();
  EXPECT_EQ(handle.value(), 0u);
  EXPECT_EQ(reg.counter("top").value(), 0u);
  handle.inc();
  EXPECT_EQ(reg.scope("sim").counter("packets").value(), 1u);
}

TEST(Metrics, HistogramSingleSampleQuantileIsTheSample) {
  obs::Histogram h(obs::Histogram::default_bounds());
  h.observe(37.5);
  // One sample: every quantile IS that sample (no interpolation against a
  // phantom second observation).
  EXPECT_EQ(h.quantile(0.0), 37.5);
  EXPECT_EQ(h.quantile(0.5), 37.5);
  EXPECT_EQ(h.quantile(0.99), 37.5);
  EXPECT_EQ(h.quantile(1.0), 37.5);
}

TEST(Metrics, QuantilesClampToObservedRange) {
  obs::Histogram h({10, 20, 30});
  h.observe(12);
  h.observe(13);
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_GE(h.quantile(q), 12.0) << q;
    EXPECT_LE(h.quantile(q), 13.0) << q;
  }
}

TEST(Metrics, RegistryJsonIsParseable) {
  obs::Registry reg;
  reg.counter("ops", {{"kind", "seal"}}).inc(5);
  reg.scope("sub").histogram("h").observe(3);
  obs::JsonWriter w;
  reg.write_json(w);
  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.has("ops{kind=seal}"));
  EXPECT_EQ(v.at("ops{kind=seal}").number, 5.0);
  ASSERT_TRUE(v.has("sub.h"));
  EXPECT_EQ(v.at("sub.h").at("count").number, 1.0);
}

// ---- Prometheus exposition ------------------------------------------------

TEST(Metrics, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("ops", {{"kind", "seal"}}).inc(5);
  reg.gauge("depth").set(9);
  reg.gauge("depth").set(4);  // peak stays 9
  reg.scope("sim").histogram("lat_us", {}, {10, 100}).observe(7);
  reg.scope("sim").histogram("lat_us", {}, {10, 100}).observe(5000);

  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE dcpl_ops counter"), std::string::npos);
  EXPECT_NE(text.find("dcpl_ops{kind=\"seal\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dcpl_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("dcpl_depth 4"), std::string::npos);
  EXPECT_NE(text.find("dcpl_depth_peak 9"), std::string::npos);
  // Histogram buckets are cumulative and end in +Inf == count.
  EXPECT_NE(text.find("dcpl_sim_lat_us_bucket{le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dcpl_sim_lat_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dcpl_sim_lat_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("dcpl_sim_lat_us_sum 5007"), std::string::npos);
}

TEST(Metrics, PrometheusEmptyRegistryIsEmptyText) {
  obs::Registry reg;
  EXPECT_EQ(obs::metrics_to_prometheus(reg), "");
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  obs::Registry reg;
  // Prometheus label values escape backslash, double quote, and newline —
  // everything else (including the brace-y bits) passes through raw.
  reg.counter("ops", {{"path", "a\\b"}}).inc(1);
  reg.counter("ops", {{"q", "say \"hi\""}}).inc(2);
  reg.counter("ops", {{"msg", "line1\nline2"}}).inc(3);

  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("dcpl_ops{path=\"a\\\\b\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dcpl_ops{q=\"say \\\"hi\\\"\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dcpl_ops{msg=\"line1\\nline2\"} 3"), std::string::npos)
      << text;
  // The raw newline must NOT appear inside any exposition line — only the
  // two-character escape. Every line must end cleanly at a sample or TYPE.
  EXPECT_EQ(text.find("line1\nline2"), std::string::npos);
}

TEST(Metrics, PrometheusHistogramWithOneSample) {
  obs::Registry reg;
  reg.histogram("lat", {}, {10, 100}).observe(50);
  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("dcpl_lat_bucket{le=\"10\"} 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dcpl_lat_bucket{le=\"100\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dcpl_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dcpl_lat_count 1"), std::string::npos);
  EXPECT_NE(text.find("dcpl_lat_sum 50"), std::string::npos);
}

// ---- Time-series sampler --------------------------------------------------

TEST(Sampler, SamplesOnVirtualCadence) {
  obs::TimeSeriesSampler s(100);
  double v = 0;
  s.add_probe("v", [&v] { return v; });

  EXPECT_EQ(s.next_due(), 0u);
  v = 1;
  EXPECT_TRUE(s.maybe_sample(0));  // due immediately at t=0
  EXPECT_FALSE(s.maybe_sample(50));
  EXPECT_FALSE(s.maybe_sample(99));
  v = 2;
  EXPECT_TRUE(s.maybe_sample(100));
  // Jumping far past the deadline takes ONE sample at the jump time and
  // re-arms past it — missed instants are not back-filled.
  v = 3;
  EXPECT_TRUE(s.maybe_sample(1234));
  EXPECT_EQ(s.next_due(), 1300u);

  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.times(), (std::vector<std::uint64_t>{0, 100, 1234}));
  EXPECT_EQ(s.points(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(s.last("v"), 3.0);
  EXPECT_EQ(s.last("unknown"), 0.0);
}

TEST(Sampler, DecimatesAndDoublesCadenceWhenFull) {
  obs::TimeSeriesSampler s(10, 8);
  std::uint64_t t = 0;
  s.add_probe("t", [&t] { return static_cast<double>(t); });

  for (t = 0; t <= 200; t += 10) s.maybe_sample(t);
  // 21 instants offered through a ring of 8: memory stays bounded, the
  // cadence coarsens (so instants between the new deadlines are skipped,
  // not stored-then-dropped), and at least one decimation happened.
  EXPECT_LT(s.samples_taken(), 21u);
  EXPECT_GE(s.samples_taken(), 8u);
  EXPECT_LE(s.size(), 8u);
  EXPECT_GE(s.size(), 4u);
  EXPECT_GE(s.decimations(), 1u);
  EXPECT_GT(s.interval_us(), 10u);
  // Every retained point is a real observation spanning the run: strictly
  // increasing times, value recorded at its own instant, oldest point kept.
  const std::vector<std::uint64_t>& times = s.times();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
    EXPECT_EQ(static_cast<double>(times[i]), s.points(0)[i]);
  }
  EXPECT_EQ(times.front(), 0u);
  EXPECT_GE(times.back(), 150u);  // the tail of the run is still covered
}

TEST(Sampler, JsonSectionRoundTrips) {
  obs::TimeSeriesSampler s(100);
  obs::Registry reg;
  obs::Counter& c = reg.counter("n");
  s.add_counter("n", c);
  s.add_gauge("g", reg.gauge("g"));
  c.inc(5);
  reg.gauge("g").set(2);
  s.sample_now(0);
  c.inc(5);
  s.sample_now(100);

  obs::JsonWriter w;
  s.write_json(w);
  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  EXPECT_EQ(v.at("interval_us").number, 100.0);
  EXPECT_EQ(v.at("samples_taken").number, 2.0);
  EXPECT_EQ(v.at("retained").number, 2.0);
  EXPECT_EQ(v.at("decimations").number, 0.0);
  const obs::JsonValue& series = v.at("series");
  ASSERT_TRUE(series.has("n"));
  EXPECT_EQ(series.at("n").array[0].array[0].number, 0.0);
  EXPECT_EQ(series.at("n").array[0].array[1].number, 5.0);
  EXPECT_EQ(series.at("n").array[1].array[1].number, 10.0);
  EXPECT_EQ(series.at("g").array[1].array[1].number, 2.0);
}

TEST(Sampler, PublishesLastValuesAsPrometheusGauges) {
  obs::TimeSeriesSampler s(100);
  double depth = 7;
  s.add_probe("queue_depth", [&depth] { return depth; });
  s.sample_now(0);

  obs::Registry reg;
  s.publish_last_values(reg);
  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("dcpl_ts_queue_depth 7"), std::string::npos) << text;
}

// ---- Logger ---------------------------------------------------------------

TEST(Logger, JsonlSinkWritesParseableRecords) {
  const std::string path = ::testing::TempDir() + "dcpl_test_log.jsonl";
  obs::Logger log;
  log.set_stderr_sink(false);
  log.set_level(obs::LogLevel::kInfo);
  std::uint64_t fake_now = 1234;
  log.set_clock([&fake_now] { return fake_now; });
  ASSERT_TRUE(log.open_jsonl(path));

  obs::Logger scoped = log.with_party("relay1");
  scoped.info("forwarded", {{"count", std::uint64_t{3}}, {"ok", true}});
  log.debug("dropped by level filter");
  log.warn("plain");
  log.close_jsonl();

  EXPECT_EQ(log.records(), 2u);  // debug was below the level
  EXPECT_EQ(scoped.records(), 2u);  // copies share sink state

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);

  const std::size_t split = body.find('\n');
  ASSERT_NE(split, std::string::npos);
  obs::JsonValue first;
  ASSERT_TRUE(obs::JsonParser::parse(body.substr(0, split), first));
  EXPECT_EQ(first.at("level").string, "info");
  EXPECT_EQ(first.at("t_us").number, 1234.0);
  EXPECT_EQ(first.at("party").string, "relay1");
  EXPECT_EQ(first.at("msg").string, "forwarded");
  EXPECT_EQ(first.at("fields").at("count").string, "3");
  EXPECT_EQ(first.at("fields").at("ok").string, "true");
  std::remove(path.c_str());
}

// ---- Tracing --------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer t;
  {
    obs::Span s(t, "ignored");
    s.arg("k", "v");
  }
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, ChromeTraceEventSchema) {
  obs::Tracer t;
  t.enable();
  t.set_virtual_clock([] { return std::uint64_t{123}; });
  {
    obs::Span s(t, "phase.one", "proto");
    s.arg("party", "relay");
  }
  t.clear_virtual_clock();
  { obs::Span s(t, "phase.two"); }
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_TRUE(t.events()[0].has_virtual);
  EXPECT_EQ(t.events()[0].vts_us, 123u);
  EXPECT_FALSE(t.events()[1].has_virtual);

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(t.to_chrome_json(), v));
  const obs::JsonValue& events = v.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  std::size_t spans = 0;
  for (const auto& e : events.array) {
    if (e.at("ph").string == "M") continue;  // process_name metadata
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    ++spans;
  }
  // phase.one appears on both the wall (pid 1) and virtual (pid 2) tracks.
  EXPECT_GE(spans, 3u);
}

// Driving a Simulator with a tracer attached must yield a non-empty
// Perfetto-compatible trace whose delivery spans carry virtual time.
TEST(Trace, SimulatorRunProducesVirtualTimeTrace) {
  class Sink final : public net::Node {
   public:
    using Node::Node;
    void on_packet(const net::Packet&, net::Simulator&) override {}
  };

  obs::Tracer tracer;
  tracer.enable();
  obs::Registry metrics;

  net::Simulator sim;
  sim.set_tracer(tracer);
  sim.set_metrics(metrics);
  Sink a("a"), b("b");
  sim.add_node(a);
  sim.add_node(b);
  sim.connect("a", "b", 1000);
  sim.at(5, [&] {
    sim.send(net::Packet{"a", "b", Bytes(64, 0xab), 1, "test"});
  });
  sim.run();

  ASSERT_FALSE(tracer.events().empty());
  bool saw_delivery = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "deliver:test") {
      saw_delivery = true;
      EXPECT_TRUE(e.has_virtual);
      EXPECT_EQ(e.vts_us, 1005u);  // sent at t=5 over a 1000us link
    }
  }
  EXPECT_TRUE(saw_delivery);

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(tracer.to_chrome_json(), v));
  EXPECT_FALSE(v.at("traceEvents").array.empty());

  // The redirected registry saw the delivery too.
  obs::Snapshot snap = metrics.snapshot();
  const obs::SnapshotEntry* pk = snap.find("packets_delivered");
  ASSERT_NE(pk, nullptr);
  EXPECT_EQ(pk->value, 1.0);
  const obs::SnapshotEntry* by = snap.find("bytes_delivered");
  ASSERT_NE(by, nullptr);
  EXPECT_EQ(by->value, 64.0);
}

// ---- LatencyRecorder ------------------------------------------------------

// Deterministic value stream with a wide dynamic range: small exact values,
// mid-range, and multi-octave outliers.
std::vector<std::uint64_t> latency_stream(std::size_t n) {
  std::vector<std::uint64_t> v;
  v.reserve(n);
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t r = x >> 33;
    switch (i % 4) {
      case 0: v.push_back(r % 8); break;            // exact sub-8 buckets
      case 1: v.push_back(100 + r % 900); break;    // ~queue-wait range
      case 2: v.push_back(10'000 + r % 90'000); break;  // ~link range
      default: v.push_back(r % 100'000'000); break;     // long tail
    }
  }
  return v;
}

// The exact value LatencyRecorder::quantile targets: the rank-ceil(q*n)
// sample of the sorted stream.
std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(LatencyRecorder, BucketIndexCoversFullRangeWithBoundedError) {
  using R = obs::LatencyRecorder;
  // Values below the sub-bucket count get exact buckets.
  for (std::uint64_t v = 0; v < R::kSubBuckets; ++v) {
    EXPECT_EQ(R::bucket_index(v), v);
    EXPECT_EQ(R::bucket_upper(R::bucket_index(v)), v);
  }
  // Everywhere else the bucket's upper edge over-reports by at most
  // 2^-kSubBits (12.5%), including around octave boundaries and at the
  // top of the range.
  for (std::uint64_t v : latency_stream(4096)) {
    const std::size_t i = R::bucket_index(v);
    ASSERT_LT(i, R::kBucketCount);
    const std::uint64_t upper = R::bucket_upper(i);
    EXPECT_GE(upper, v);
    EXPECT_LE(upper - v, v / R::kSubBuckets + 1);
  }
  EXPECT_EQ(R::bucket_index(~std::uint64_t{0}), R::kBucketCount - 1);
  EXPECT_EQ(R::bucket_upper(R::kBucketCount - 1), ~std::uint64_t{0});
}

TEST(LatencyRecorder, QuantilesTrackExactQuantilesWithinLogBucketError) {
  const std::vector<std::uint64_t> stream = latency_stream(20'000);
  obs::LatencyRecorder rec;
  for (std::uint64_t v : stream) rec.record(v);

  EXPECT_EQ(rec.count(), stream.size());
  EXPECT_EQ(rec.min(), *std::min_element(stream.begin(), stream.end()));
  EXPECT_EQ(rec.max(), *std::max_element(stream.begin(), stream.end()));
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t exact = exact_quantile(stream, q);
    const std::uint64_t got = rec.quantile(q);
    // The reported value is the rank sample's bucket upper edge: never
    // below the exact quantile, never more than one sub-bucket above it.
    EXPECT_GE(got, exact) << "q=" << q;
    EXPECT_LE(got, exact + exact / obs::LatencyRecorder::kSubBuckets + 1)
        << "q=" << q;
  }
}

// The bounds-based obs::Histogram on the identical stream: with power-of-two
// bounds its quantile error is at most 2x, strictly looser than the
// recorder's 12.5% — the reason the tracing plane gets its own recorder
// instead of reusing Histogram (which also needs its range chosen up front
// and is single-writer).
TEST(LatencyRecorder, TighterThanBoundsHistogramOnIdenticalStream) {
  const std::vector<std::uint64_t> stream = latency_stream(20'000);
  obs::LatencyRecorder rec;
  std::vector<double> bounds;
  for (double b = 1; b <= 1e9; b *= 2) bounds.push_back(b);
  obs::Histogram hist(bounds);
  for (std::uint64_t v : stream) {
    rec.record(v);
    hist.observe(static_cast<double>(v));
  }
  EXPECT_EQ(rec.count(), hist.count());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = static_cast<double>(exact_quantile(stream, q));
    const double h = hist.quantile(q);
    const double r = static_cast<double>(rec.quantile(q));
    ASSERT_GT(exact, 0.0);
    EXPECT_LE(h, exact * 2.0 + 1) << "q=" << q;       // log2-bounds: <= 2x
    EXPECT_GE(h, exact * 0.5 - 1) << "q=" << q;
    EXPECT_LE(r, exact * 1.125 + 1) << "q=" << q;     // recorder: <= 12.5%
    EXPECT_GE(r, exact) << "q=" << q;
  }
}

TEST(LatencyRecorder, MergeIsExactAndCommutative) {
  const std::vector<std::uint64_t> stream = latency_stream(9'000);
  obs::LatencyRecorder whole;
  obs::LatencyRecorder parts[3];
  for (std::size_t i = 0; i < stream.size(); ++i) {
    whole.record(stream[i]);
    parts[i % 3].record(stream[i]);
  }
  obs::LatencyRecorder merged;
  for (const auto& p : parts) merged.merge(p);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  // Bit-identical bucket state, not just matching quantiles — recording is
  // a commutative add, so any partition of the stream merges back to the
  // same histogram. This is what makes sharded-run percentiles identical
  // to serial-run percentiles.
  for (std::size_t i = 0; i < obs::LatencyRecorder::kBucketCount; ++i) {
    ASSERT_EQ(merged.bucket(i), whole.bucket(i)) << "bucket " << i;
  }
  // Merging an empty recorder must not disturb min/max.
  obs::LatencyRecorder empty;
  merged.merge(empty);
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST(LatencyRecorder, TopBucketAndExtremesStayExact) {
  obs::LatencyRecorder rec;
  rec.record(0);
  rec.record(~std::uint64_t{0});
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_EQ(rec.min(), 0u);
  EXPECT_EQ(rec.max(), ~std::uint64_t{0});
  EXPECT_EQ(rec.quantile(0.0), 0u);    // clamped to min
  EXPECT_EQ(rec.quantile(1.0), ~std::uint64_t{0});
  rec.reset();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.min(), 0u);
  EXPECT_EQ(rec.max(), 0u);
  EXPECT_EQ(rec.quantile(0.5), 0u);
}

TEST(LatencyRecorder, ConcurrentRecordingMatchesSerialBitForBit) {
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 50'000;
  const std::vector<std::uint64_t> stream =
      latency_stream(kThreads * kPerThread);

  obs::LatencyRecorder serial;
  for (std::uint64_t v : stream) serial.record(v);

  obs::LatencyRecorder shared;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, &stream, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        shared.record(stream[t * kPerThread + i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(shared.count(), stream.size());
  EXPECT_EQ(shared.min(), serial.min());
  EXPECT_EQ(shared.max(), serial.max());
  for (std::size_t i = 0; i < obs::LatencyRecorder::kBucketCount; ++i) {
    ASSERT_EQ(shared.bucket(i), serial.bucket(i)) << "bucket " << i;
  }
}

// ---- Stage registry -------------------------------------------------------

TEST(StageRegistry, TimerRecordsOnlyWhileEnabled) {
  obs::reset_stage_recorders();
  obs::set_stage_recording(false);
  {
    obs::StageTimer t(obs::Stage::kCryptoSeal);
  }
  EXPECT_EQ(obs::stage_recorder(obs::Stage::kCryptoSeal).count(), 0u);

  obs::set_stage_recording(true);
  {
    obs::StageTimer t(obs::Stage::kCryptoSeal);
  }
  {
    obs::StageTimer t(obs::Stage::kWireFrame);
  }
  obs::set_stage_recording(false);
  EXPECT_EQ(obs::stage_recorder(obs::Stage::kCryptoSeal).count(), 1u);
  EXPECT_EQ(obs::stage_recorder(obs::Stage::kWireFrame).count(), 1u);
  EXPECT_EQ(obs::stage_recorder(obs::Stage::kCryptoOpen).count(), 0u);

  obs::reset_stage_recorders();
  EXPECT_EQ(obs::stage_recorder(obs::Stage::kCryptoSeal).count(), 0u);
  EXPECT_EQ(obs::stage_recorder(obs::Stage::kWireFrame).count(), 0u);
}

TEST(StageRegistry, StageNamesAreStable) {
  EXPECT_STREQ(obs::stage_name(obs::Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kLink), "link");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kCryptoSeal), "crypto_seal");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kCryptoOpen), "crypto_open");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kWireFrame), "wire_frame");
}

}  // namespace
}  // namespace dcpl
