// Multi-Party Relay, VPN, and direct baselines: correctness + paper tables
// T6 (§3.2.4) and T8 (§3.3).
#include "systems/mpr/mpr.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::mpr {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<SecureOrigin> origin;
  std::vector<std::unique_ptr<OnionRelay>> relays;
  std::unique_ptr<VpnServer> vpn;
  std::unique_ptr<Client> client;

  explicit Fixture(std::size_t n_relays = 2) {
    book.set("origin.example", core::benign_identity("addr:origin.example"));
    origin = std::make_unique<SecureOrigin>(
        "origin.example",
        [](const http::Request& req) {
          http::Response resp;
          resp.body = to_bytes("hello " + req.path);
          return resp;
        },
        log, book, 1);
    sim.add_node(*origin);

    for (std::size_t i = 0; i < n_relays; ++i) {
      std::string addr = "relay" + std::to_string(i + 1) + ".example";
      book.set(addr, core::benign_identity("addr:" + addr));
      relays.push_back(std::make_unique<OnionRelay>(addr, log, book, 10 + i));
      sim.add_node(*relays.back());
    }

    book.set("vpn.example", core::benign_identity("addr:vpn.example"));
    vpn = std::make_unique<VpnServer>("vpn.example", log, book, 99);
    sim.add_node(*vpn);

    book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));
    client = std::make_unique<Client>("10.0.0.1", "user:alice", log, 42);
    sim.add_node(*client);
  }

  std::vector<RelayInfo> chain() const {
    std::vector<RelayInfo> out;
    for (const auto& r : relays) {
      out.push_back(RelayInfo{r->address(), r->key().public_key});
    }
    return out;
  }

  http::Request request(const std::string& path = "/embarrassing") {
    http::Request req;
    req.authority = "origin.example";
    req.path = path;
    return req;
  }
};

TEST(Mpr, TwoHopFetchWorks) {
  Fixture f;
  std::string body;
  f.client->fetch_via_relays(
      f.request("/page"), f.chain(), "origin.example",
      f.origin->key().public_key, f.sim,
      [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "hello /page");
  EXPECT_EQ(f.origin->requests_served(), 1u);
  EXPECT_EQ(f.relays[0]->forwarded(), 1u);
  EXPECT_EQ(f.relays[1]->forwarded(), 1u);
}

// Paper table §3.2.4: User (▲,●), Relay1 (▲,⊙), Relay2 (△,⊙/●), Origin (△,●).
TEST(Mpr, TableT6TuplesMatchPaper) {
  Fixture f;
  f.client->fetch_via_relays(f.request(), f.chain(), "origin.example",
                             f.origin->key().public_key, f.sim, nullptr);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.0.0.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("relay1.example").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("relay2.example").to_string(), "(△, ⊙/●)");
  EXPECT_EQ(a.tuple_for("origin.example").to_string(), "(△, ●)");
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
}

// Paper table §3.3: Client (▲,●), VPN (▲,●), Origin (△,●) — not decoupled.
TEST(Mpr, TableT8VpnMatchesPaper) {
  Fixture f;
  f.client->fetch_via_vpn(f.request(),
                          RelayInfo{"vpn.example", f.vpn->key().public_key},
                          "origin.example", f.origin->key().public_key, f.sim,
                          nullptr);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.0.0.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("vpn.example").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("origin.example").to_string(), "(△, ●)");
  EXPECT_FALSE(a.is_decoupled("10.0.0.1"));
  EXPECT_EQ(a.violating_parties("10.0.0.1"),
            std::vector<core::Party>{"vpn.example"});
}

TEST(Mpr, VpnFetchStillWorks) {
  Fixture f;
  std::string body;
  f.client->fetch_via_vpn(f.request("/p"),
                          RelayInfo{"vpn.example", f.vpn->key().public_key},
                          "origin.example", f.origin->key().public_key, f.sim,
                          [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "hello /p");
}

TEST(Mpr, DirectFetchExposesClientToOrigin) {
  Fixture f;
  std::string body;
  f.client->fetch_via_relays(f.request("/d"), {}, "origin.example",
                             f.origin->key().public_key, f.sim,
                             [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "hello /d");
  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("origin.example").to_string(), "(▲, ●)");
  EXPECT_FALSE(a.is_decoupled("10.0.0.1"));
}

TEST(Mpr, BreachResistance) {
  Fixture f;
  f.client->fetch_via_relays(f.request(), f.chain(), "origin.example",
                             f.origin->key().public_key, f.sim, nullptr);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  // No single party in the MPR path couples identity to data (§1).
  for (const char* p :
       {"relay1.example", "relay2.example", "origin.example"}) {
    EXPECT_FALSE(a.breach(p).coupled()) << p;
  }
}

TEST(Mpr, VpnBreachCouples) {
  Fixture f;
  f.client->fetch_via_vpn(f.request(),
                          RelayInfo{"vpn.example", f.vpn->key().public_key},
                          "origin.example", f.origin->key().public_key, f.sim,
                          nullptr);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_TRUE(a.breach("vpn.example").coupled());
}

TEST(Mpr, CollusionOfBothRelaysRecouples) {
  Fixture f;
  f.client->fetch_via_relays(f.request(), f.chain(), "origin.example",
                             f.origin->key().public_key, f.sim, nullptr);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.coalition_recouples({"relay1.example"}));
  EXPECT_FALSE(a.coalition_recouples({"relay2.example"}));
  EXPECT_TRUE(a.coalition_recouples({"relay1.example", "relay2.example"}));
}

class MprHopSweep : public ::testing::TestWithParam<std::size_t> {};

// §4.2: more hops still work, and the minimum re-coupling coalition grows
// with (or stays at) the chain prefix needed to join ▲ at the entry to ● at
// the exit.
TEST_P(MprHopSweep, ChainOfNHops) {
  const std::size_t hops = GetParam();
  Fixture f(hops);
  std::string body;
  f.client->fetch_via_relays(f.request("/n"), f.chain(), "origin.example",
                             f.origin->key().public_key, f.sim,
                             [&](const http::Response& r) { body = to_string(r.body); });
  f.sim.run();
  EXPECT_EQ(body, "hello /n");

  core::DecouplingAnalysis a(f.log);
  std::vector<core::Party> all_relays;
  for (const auto& r : f.relays) all_relays.push_back(r->address());

  if (hops == 1) {
    // A single hop is entry AND exit: it sees both the client address and
    // the FQDN — structurally a VPN. The framework flags it.
    EXPECT_FALSE(a.is_decoupled("10.0.0.1"));
    EXPECT_TRUE(a.breach("relay1.example").coupled());
  } else {
    EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
    // The entry relay alone never couples; the full relay chain does (the
    // exit knows the FQDN, and the links join up).
    EXPECT_FALSE(a.coalition_recouples({all_relays.front()}));
    EXPECT_TRUE(a.coalition_recouples(all_relays));
  }
  auto min_coalition = a.min_recoupling_coalition("10.0.0.1");
  ASSERT_TRUE(min_coalition.has_value());
  EXPECT_EQ(*min_coalition, hops);
}

INSTANTIATE_TEST_SUITE_P(Hops, MprHopSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Mpr, RelayCannotDecryptWrongLayer) {
  // Sending relay2's layer to relay1 (wrong key) drops the request.
  Fixture f;
  std::vector<RelayInfo> wrong_chain = {
      RelayInfo{f.relays[0]->address(), f.relays[1]->key().public_key}};
  f.client->fetch_via_relays(f.request(), wrong_chain, "origin.example",
                             f.origin->key().public_key, f.sim, nullptr);
  f.sim.run();
  EXPECT_EQ(f.origin->requests_served(), 0u);
}

TEST(Mpr, MultipleConcurrentClients) {
  Fixture f;
  core::AddressBook& book = f.book;
  std::vector<std::unique_ptr<Client>> clients;
  int got = 0;
  for (int i = 0; i < 5; ++i) {
    std::string addr = "10.0.1." + std::to_string(i + 1);
    book.set(addr, core::sensitive_identity("user:u" + std::to_string(i),
                                            "network"));
    clients.push_back(
        std::make_unique<Client>(addr, "user:u" + std::to_string(i), f.log,
                                 500 + i));
    f.sim.add_node(*clients.back());
  }
  for (auto& c : clients) {
    c->fetch_via_relays(f.request("/m"), f.chain(), "origin.example",
                        f.origin->key().public_key, f.sim,
                        [&](const http::Response&) { ++got; });
  }
  f.sim.run();
  EXPECT_EQ(got, 5);
}


// §4.4 real-world regression: DRM/geo systems need coarse user location.
// The privacy-preserving compromise (as in Private Relay): the client
// volunteers a coarse region INSIDE the end-to-end request — the origin can
// enforce its geo policy, and no relay learns anything.
TEST(Mpr, CoarseGeoHintReachesOnlyTheOrigin) {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;
  book.set("origin.example", core::benign_identity("addr:origin.example"));
  book.set("relay1.example", core::benign_identity("addr:relay1.example"));
  book.set("relay2.example", core::benign_identity("addr:relay2.example"));
  book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

  std::string geo_seen_by_origin;
  SecureOrigin origin(
      "origin.example",
      [&](const http::Request& req) {
        geo_seen_by_origin = req.header("X-Coarse-Geo");
        http::Response resp;
        // Geo-gated content: the paper's DRM example.
        resp.status = geo_seen_by_origin == "EU" ? 200 : 451;
        resp.body = to_bytes("stream");
        return resp;
      },
      log, book, 1);
  OnionRelay relay1("relay1.example", log, book, 2);
  OnionRelay relay2("relay2.example", log, book, 3);
  Client client("10.0.0.1", "user:alice", log, 4);
  sim.add_node(origin);
  sim.add_node(relay1);
  sim.add_node(relay2);
  sim.add_node(client);

  http::Request req;
  req.authority = "origin.example";
  req.path = "/video";
  req.headers = {{"X-Coarse-Geo", "EU"}};  // user-controlled, coarse
  int status = 0;
  client.fetch_via_relays(req,
                          {{"relay1.example", relay1.key().public_key},
                           {"relay2.example", relay2.key().public_key}},
                          "origin.example", origin.key().public_key, sim,
                          [&](const http::Response& r) { status = r.status; });
  sim.run();

  EXPECT_EQ(status, 200);
  EXPECT_EQ(geo_seen_by_origin, "EU");
  // Neither relay observed the geo hint (it rides inside the e2e layer).
  for (const char* relay : {"relay1.example", "relay2.example"}) {
    for (const auto& obs : log.for_party(relay)) {
      EXPECT_EQ(obs.atom.label.find("EU"), std::string::npos) << relay;
    }
  }
  // And the system stays decoupled: the hint is data the ORIGIN needs for
  // its function, revealed to the origin only.
  core::DecouplingAnalysis a(log);
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
}

}  // namespace
}  // namespace dcpl::systems::mpr
