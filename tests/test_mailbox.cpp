// ShardMailbox: bounded MPSC queue semantics under real concurrency —
// randomized multi-producer bursts, full-queue backpressure accounting,
// close-while-nonempty draining, and payload integrity end to end.
#include "net/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace dcpl::net {
namespace {

ShardEvent make_event(std::uint32_t src_shard, std::uint64_t seq, Time t) {
  ShardEvent ev;
  ev.time = t;
  ev.src_shard = src_shard;
  ev.src_seq = seq;
  ev.link_key = (static_cast<std::uint64_t>(src_shard) << 32) | seq;
  ev.context = seq * 31 + src_shard;
  // Payload encodes (shard, seq) so the consumer can verify integrity.
  ev.payload = {static_cast<std::uint8_t>(src_shard),
                static_cast<std::uint8_t>(seq & 0xff),
                static_cast<std::uint8_t>((seq >> 8) & 0xff)};
  return ev;
}

TEST(ShardMailbox, SingleThreadedPushDrainRoundTrip) {
  ShardMailbox box(8);
  EXPECT_EQ(box.capacity(), 8u);
  EXPECT_EQ(box.size(), 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(box.try_push(make_event(0, i, 100 * i)));
  }
  EXPECT_EQ(box.size(), 5u);
  EXPECT_EQ(box.accepted(), 5u);

  std::vector<ShardEvent> out;
  EXPECT_EQ(box.drain(out), 5u);
  EXPECT_EQ(box.size(), 0u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].src_seq, i);  // FIFO per producer
    EXPECT_EQ(out[i].time, 100 * i);
  }
}

TEST(ShardMailbox, DrainAppendsToExistingBuffer) {
  ShardMailbox box(8);
  std::vector<ShardEvent> out;
  out.push_back(make_event(9, 999, 1));
  ASSERT_TRUE(box.try_push(make_event(0, 1, 2)));
  EXPECT_EQ(box.drain(out), 1u);
  ASSERT_EQ(out.size(), 2u);  // staged events from a prior drain survive
  EXPECT_EQ(out[0].src_seq, 999u);
  EXPECT_EQ(out[1].src_seq, 1u);
}

TEST(ShardMailbox, FullQueueRejectsWithoutConsumingEvent) {
  ShardMailbox box(2);
  ASSERT_TRUE(box.try_push(make_event(0, 0, 0)));
  ASSERT_TRUE(box.try_push(make_event(0, 1, 0)));

  ShardEvent ev = make_event(0, 2, 0);
  const Bytes payload_before = ev.payload;
  EXPECT_FALSE(box.try_push(std::move(ev)));
  // Rejection must not consume the payload: the producer retries the same
  // event after backing off.
  EXPECT_EQ(ev.payload, payload_before);
  EXPECT_EQ(box.rejected_full(), 1u);

  std::vector<ShardEvent> out;
  box.drain(out);
  EXPECT_TRUE(box.try_push(std::move(ev)));  // room again after drain
  EXPECT_EQ(box.accepted(), 3u);
}

TEST(ShardMailbox, CloseRejectsNewPushesButLeavesQueueDrainable) {
  ShardMailbox box(8);
  ASSERT_TRUE(box.try_push(make_event(0, 0, 5)));
  ASSERT_TRUE(box.try_push(make_event(0, 1, 6)));
  box.close();
  EXPECT_TRUE(box.closed());
  EXPECT_FALSE(box.try_push(make_event(0, 2, 7)));
  EXPECT_EQ(box.rejected_closed(), 1u);
  // Shutdown-while-nonempty: queued events are not lost.
  std::vector<ShardEvent> out;
  EXPECT_EQ(box.drain(out), 2u);
  EXPECT_EQ(out.size(), 2u);
}

// Randomized multi-producer soak: P producers push bursts with random
// payload sizes against a deliberately tiny capacity while one consumer
// drains; every accepted event must come out exactly once, uncorrupted,
// and in per-producer FIFO order.
TEST(ShardMailbox, RandomizedMultiProducerSoak) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  ShardMailbox box(64);  // small: forces constant full-queue backpressure

  std::atomic<std::uint32_t> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &live, p] {
      XoshiroRng rng(0xFEEDULL + p);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ShardEvent ev = make_event(p, i, i);
        ev.payload.assign(1 + rng.below(64),
                          static_cast<std::uint8_t>(p * 7 + 1));
        ev.payload[0] = static_cast<std::uint8_t>(p);
        while (!box.try_push(std::move(ev))) {
          std::this_thread::yield();
        }
        if (rng.below(16) == 0) std::this_thread::yield();  // jitter bursts
      }
      live.fetch_sub(1);
    });
  }

  std::vector<ShardEvent> got;
  std::vector<ShardEvent> batch;
  while (live.load() != 0 || box.size() != 0) {
    batch.clear();
    if (box.drain(batch) == 0) {
      std::this_thread::yield();
      continue;
    }
    got.insert(got.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  for (auto& t : producers) t.join();
  box.drain(got);  // anything raced in after the last size() check

  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  EXPECT_EQ(box.accepted(), kProducers * kPerProducer);

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  for (const ShardEvent& ev : got) {
    ASSERT_LT(ev.src_shard, kProducers);
    // Per-producer FIFO: a producer's events drain in push order.
    EXPECT_EQ(ev.src_seq, next_seq[ev.src_shard]);
    ++next_seq[ev.src_shard];
    // Payload integrity across the handoff.
    ASSERT_FALSE(ev.payload.empty());
    EXPECT_EQ(ev.payload[0], static_cast<std::uint8_t>(ev.src_shard));
    for (std::size_t i = 1; i < ev.payload.size(); ++i) {
      EXPECT_EQ(ev.payload[i],
                static_cast<std::uint8_t>(ev.src_shard * 7 + 1));
    }
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

// Producers hammer a closing mailbox: after close(), every push must be
// rejected and counted, and the pre-close contents drain intact.
TEST(ShardMailbox, ShutdownWhileProducersActive) {
  ShardMailbox box(4096);
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < 3; ++p) {
    producers.emplace_back([&box, &stop, p] {
      std::uint64_t seq = 0;
      while (!stop.load()) {
        box.try_push(make_event(p, seq, seq + 1));
        ++seq;
      }
      // A burst straight into the closed mailbox.
      for (int i = 0; i < 100; ++i) {
        box.try_push(make_event(p, seq, seq + 1));
        ++seq;
      }
    });
  }
  while (box.accepted() < 1000) std::this_thread::yield();
  box.close();
  stop.store(true);
  for (auto& t : producers) t.join();

  std::vector<ShardEvent> out;
  box.drain(out);
  EXPECT_EQ(out.size(), box.accepted());  // nothing accepted was lost
  EXPECT_GE(box.rejected_closed(), 300u);  // the post-close bursts all bounced
  EXPECT_EQ(box.size(), 0u);
}

TEST(ShardMailbox, MergeOrderIsTotalOnTimeShardSeq) {
  // merges_before drives the deterministic fold; spot-check the key order.
  ShardEvent a = make_event(0, 5, 100);
  ShardEvent b = make_event(1, 2, 100);
  ShardEvent c = make_event(1, 3, 100);
  ShardEvent d = make_event(0, 1, 99);
  EXPECT_TRUE(merges_before(d, a));   // earlier time first
  EXPECT_TRUE(merges_before(a, b));   // tie on time: lower shard first
  EXPECT_TRUE(merges_before(b, c));   // tie on (time, shard): lower seq
  EXPECT_FALSE(merges_before(a, a));  // irreflexive (strict weak order)
}

}  // namespace
}  // namespace dcpl::net
