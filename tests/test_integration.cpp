// Cross-system integration: the §5.1 vision of dynamically stitching
// decoupled services. A user composes ODoH name resolution with an MPR
// fetch: the DNS path never learns the browsing, the relay path never
// learns the DNS identity coupling — and the union of ALL intermediaries'
// logs still cannot re-couple the user with their destination.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "systems/mpr/mpr.hpp"
#include "systems/odoh/odoh.hpp"

namespace dcpl::systems {
namespace {

struct StitchedWorld {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  // DNS side.
  std::unique_ptr<odoh::AuthorityNode> root;
  std::unique_ptr<odoh::ResolverNode> target;
  std::unique_ptr<odoh::OdohProxy> dns_proxy;
  std::unique_ptr<odoh::StubClient> stub;

  // Web side.
  std::unique_ptr<mpr::SecureOrigin> origin;
  std::unique_ptr<mpr::OnionRelay> relay1;
  std::unique_ptr<mpr::OnionRelay> relay2;
  std::unique_ptr<mpr::Client> browser;

  StitchedWorld() {
    for (const char* a :
         {"198.41.0.4", "target.example", "dns-proxy.example",
          "relay1.example", "relay2.example", "203.0.113.10"}) {
      book.set(a, core::benign_identity(std::string("addr:") + a));
    }
    book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));

    dns::Zone zone("");
    // The origin's A record: its simulator address IS its IPv4.
    zone.add_a("shop.example.com", "203.0.113.10");
    root = std::make_unique<odoh::AuthorityNode>("198.41.0.4",
                                                 std::move(zone), log, book);
    target = std::make_unique<odoh::ResolverNode>("target.example",
                                                  "198.41.0.4", log, book, 2);
    dns_proxy = std::make_unique<odoh::OdohProxy>(
        "dns-proxy.example", "target.example", log, book);
    stub = std::make_unique<odoh::StubClient>("10.0.0.1", "user:alice", log,
                                              7);

    origin = std::make_unique<mpr::SecureOrigin>(
        "203.0.113.10",
        [](const http::Request& req) {
          http::Response resp;
          resp.body = to_bytes("shop content " + req.path);
          return resp;
        },
        log, book, 3);
    relay1 = std::make_unique<mpr::OnionRelay>("relay1.example", log, book, 4);
    relay2 = std::make_unique<mpr::OnionRelay>("relay2.example", log, book, 5);
    // NOTE: the browser shares the stub's host (same user), so it gets its
    // own node address on the same machine.
    book.set("10.0.0.2", core::sensitive_identity("user:alice", "network"));
    browser = std::make_unique<mpr::Client>("10.0.0.2", "user:alice", log, 6);

    for (net::Node* n : std::vector<net::Node*>{
             root.get(), target.get(), dns_proxy.get(), stub.get(),
             origin.get(), relay1.get(), relay2.get(), browser.get()}) {
      sim.add_node(*n);
    }
  }
};

TEST(Integration, OdohResolveThenMprFetch) {
  StitchedWorld w;

  // Step 1: resolve shop.example.com through ODoH.
  std::string resolved_ip;
  w.stub->query("shop.example.com", odoh::Mode::kOdoh, "",
                w.target->key().public_key, "dns-proxy.example", w.sim,
                [&](const dns::Message& m) {
                  for (const auto& rr : m.answers) {
                    if (rr.type == dns::RecordType::kA) {
                      resolved_ip = dns::rdata_to_ipv4(rr.rdata);
                    }
                  }
                });
  w.sim.run();
  ASSERT_EQ(resolved_ip, "203.0.113.10");

  // Step 2: fetch from the resolved address through the 2-hop relay chain.
  std::vector<mpr::RelayInfo> chain = {
      {"relay1.example", w.relay1->key().public_key},
      {"relay2.example", w.relay2->key().public_key}};
  http::Request req;
  req.authority = "shop.example.com";
  req.path = "/basket";
  std::string body;
  w.browser->fetch_via_relays(req, chain, resolved_ip,
                              w.origin->key().public_key, w.sim,
                              [&](const http::Response& r) {
                                body = to_string(r.body);
                              });
  w.sim.run();
  EXPECT_EQ(body, "shop content /basket");

  // The composed system remains decoupled for the user (both node addrs).
  core::DecouplingAnalysis a(w.log);
  std::vector<core::Party> user = {"10.0.0.1", "10.0.0.2"};
  EXPECT_TRUE(a.is_decoupled(user));

  // No single intermediary across BOTH systems couples alice to the shop.
  for (const char* p : {"dns-proxy.example", "target.example",
                        "relay1.example", "relay2.example", "203.0.113.10"}) {
    EXPECT_FALSE(a.breach(p).coupled()) << p;
  }

  // Cross-system coalitions cannot couple: the DNS flow and the web flow
  // share no linkage contexts (stitching isolates them).
  EXPECT_FALSE(a.coalition_recouples({"dns-proxy.example", "relay2.example"}));
  EXPECT_FALSE(a.coalition_recouples({"target.example", "relay1.example"}));
  // Within each system the known §4.1 collusion thresholds still apply:
  // the full ODoH pair re-couples, as does the full web relay chain.
  EXPECT_TRUE(
      a.coalition_recouples({"dns-proxy.example", "target.example"}));
  EXPECT_TRUE(a.coalition_recouples({"relay1.example", "relay2.example"}));
}

TEST(Integration, StitchingBeatsSingleProviderBundling) {
  // Counterfactual: if ONE organization ran both the DNS proxy and the web
  // entry relay (the §2.3 centralization concern), its merged logs hold the
  // user's identity on both paths — and with the respective partners, each
  // half re-couples. Decoupling requires institutional separation, not just
  // architectural separation.
  StitchedWorld w;

  std::string ip;
  w.stub->query("shop.example.com", odoh::Mode::kOdoh, "",
                w.target->key().public_key, "dns-proxy.example", w.sim,
                [&](const dns::Message& m) {
                  for (const auto& rr : m.answers) {
                    if (rr.type == dns::RecordType::kA) {
                      ip = dns::rdata_to_ipv4(rr.rdata);
                    }
                  }
                });
  w.sim.run();
  std::vector<mpr::RelayInfo> chain = {
      {"relay1.example", w.relay1->key().public_key},
      {"relay2.example", w.relay2->key().public_key}};
  http::Request req;
  req.authority = "shop.example.com";
  w.browser->fetch_via_relays(req, chain, ip, w.origin->key().public_key,
                              w.sim, nullptr);
  w.sim.run();

  core::DecouplingAnalysis a(w.log);
  // "MegaCorp" = dns-proxy + relay1 (the bundled intermediary), colluding
  // with the dns target: the DNS half re-couples the user's queries.
  EXPECT_TRUE(a.coalition_recouples(
      {"dns-proxy.example", "relay1.example", "target.example"}));
  // Without the bundling, target + relay1 alone do not.
  EXPECT_FALSE(a.coalition_recouples({"target.example", "relay1.example"}));
}

}  // namespace
}  // namespace dcpl::systems
