// Tests for the telemetry plane's engine side: EngineProfiler bucket
// accounting, the sampled hot path's exactness guarantees, and the
// passivity contract — a Simulator with a profiler and a sampler attached
// must produce bit-identical virtual time, event counts, and delivered
// bytes as a bare run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/profile.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace dcpl {
namespace {

class EchoNode : public net::Node {
 public:
  using Node::Node;
  void on_packet(const net::Packet& p, net::Simulator& sim) override {
    if (p.protocol == "ping") {
      sim.send(net::Packet{address(), p.src, p.payload, p.context, "pong"});
    }
  }
};

class CountNode : public net::Node {
 public:
  using Node::Node;
  int received = 0;
  void on_packet(const net::Packet&, net::Simulator&) override { ++received; }
};

struct RunResult {
  net::Time end = 0;
  std::uint64_t bytes = 0;
  double events = 0;
  int pongs = 0;
};

/// Ping/pong between two nodes plus periodic callbacks: both event kinds
/// and two protocols, deterministic end-to-end.
RunResult run_workload(obs::TimeSeriesSampler* sampler,
                       net::EngineProfiler* profiler, int rounds = 200) {
  obs::Registry reg;
  net::Simulator sim;
  sim.set_metrics(reg);
  EchoNode echo("echo");
  CountNode client("client");
  sim.add_node(echo);
  sim.add_node(client);
  sim.connect("client", "echo", 100);

  int callbacks = 0;
  for (int i = 0; i < rounds; ++i) {
    sim.send(net::Packet{"client", "echo", Bytes(32), std::uint64_t(i),
                         "ping"},
             static_cast<net::Time>(i * 10));
    sim.at(static_cast<net::Time>(i * 10 + 5), [&callbacks] { ++callbacks; });
  }
  if (sampler != nullptr) sim.set_sampler(sampler);
  if (profiler != nullptr) sim.set_profiler(profiler);

  RunResult r;
  r.end = sim.run();
  sim.set_sampler(nullptr);
  sim.set_profiler(nullptr);
  r.bytes = sim.bytes_delivered();
  r.events = reg.counter("events_processed").value();
  r.pongs = client.received;
  EXPECT_EQ(callbacks, rounds);
  return r;
}

TEST(Profiler, CountsEveryEventExactly) {
  // sample_shift 0: every event timed, no hardware backend.
  net::EngineProfiler prof(0, 0, false);
  const RunResult r = run_workload(nullptr, &prof);

  EXPECT_EQ(r.pongs, 200);
  // 200 pings + 200 pongs deliveries, 200 callbacks.
  const net::EngineProfiler::Bucket& del =
      prof.kind(net::EngineEvent::kDelivery);
  const net::EngineProfiler::Bucket& cb =
      prof.kind(net::EngineEvent::kCallback);
  EXPECT_EQ(del.events, 400u);
  EXPECT_EQ(cb.events, 200u);
  EXPECT_EQ(prof.events(), 600u);
  EXPECT_EQ(static_cast<double>(prof.events()), r.events);

  // Everything sampled at shift 0, and sampled time is real.
  EXPECT_EQ(del.sampled, del.events);
  EXPECT_EQ(cb.sampled, cb.events);
  EXPECT_GT(del.ns, 0u);
  EXPECT_GT(del.est_ns_per_event(), 0.0);

  // Per-protocol buckets partition the deliveries exactly.
  std::uint64_t proto_events = 0;
  for (const net::EngineProfiler::Bucket& b : prof.protocols()) {
    proto_events += b.events;
  }
  EXPECT_EQ(proto_events, del.events);
}

TEST(Profiler, SampledSubsetNeverExceedsExactCounts) {
  net::EngineProfiler prof(3, 2, true);  // time every 8th, hw every 4th timed
  EXPECT_EQ(prof.sample_period(), 8u);
  const RunResult r = run_workload(nullptr, &prof);
  EXPECT_EQ(static_cast<double>(prof.events()), r.events);
  for (net::EngineEvent::Kind k :
       {net::EngineEvent::kDelivery, net::EngineEvent::kCallback}) {
    const net::EngineProfiler::Bucket& b = prof.kind(k);
    EXPECT_LE(b.sampled, b.events);
    EXPECT_LE(b.hw_sampled, b.sampled);
    EXPECT_GT(b.sampled, 0u);  // 600 events at period 8: every kind sampled
  }
}

TEST(Profiler, JsonSectionIsConsistent) {
  net::EngineProfiler prof(0, 0, false);
  run_workload(nullptr, &prof);

  obs::JsonWriter w;
  prof.write_json(w, {"ping", "pong"});
  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonParser::parse(w.str(), v));
  EXPECT_EQ(v.at("sample_period").number, 1.0);
  EXPECT_EQ(v.at("events").number, 600.0);
  EXPECT_EQ(v.at("kinds").at("delivery").at("events").number, 400.0);
  EXPECT_EQ(v.at("kinds").at("callback").at("events").number, 200.0);
  double proto_sum = 0;
  for (const auto& [name, b] : v.at("protocols").object) {
    EXPECT_FALSE(name.empty());
    proto_sum += b.at("events").number;
  }
  EXPECT_EQ(proto_sum, 400.0);
}

// The passivity contract: telemetry observes the run, it never perturbs
// it. Virtual end time, event count, delivered bytes, and application
// deliveries must be identical with the full plane attached.
TEST(Profiler, TelemetryIsPassive) {
  const RunResult bare = run_workload(nullptr, nullptr);

  obs::TimeSeriesSampler sampler(50);
  sampler.add_probe("x", [] { return 1.0; });
  net::EngineProfiler prof(0, 0, true);
  const RunResult telem = run_workload(&sampler, &prof);

  EXPECT_EQ(telem.end, bare.end);
  EXPECT_EQ(telem.bytes, bare.bytes);
  EXPECT_EQ(telem.events, bare.events);
  EXPECT_EQ(telem.pongs, bare.pongs);
  EXPECT_GE(sampler.samples_taken(), 2u);
}

// The run loop polls the sampler on the virtual clock: a 50 us cadence
// over a ~2 ms run takes one sample per crossed deadline, stamped with
// event (virtual) times, not wall times.
TEST(Profiler, SamplerRunsOnVirtualTime) {
  obs::TimeSeriesSampler sampler(50);
  sampler.add_probe("one", [] { return 1.0; });
  const RunResult r = run_workload(&sampler, nullptr);

  ASSERT_GE(sampler.size(), 2u);
  const std::vector<std::uint64_t>& times = sampler.times();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
  EXPECT_LE(times.back(), static_cast<std::uint64_t>(r.end));
}

}  // namespace
}  // namespace dcpl
