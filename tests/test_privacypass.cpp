// Privacy Pass (§3.2.1, Figure 2): issuance, redemption, double-spend,
// unlinkability, and the paper's T3 table.
#include "systems/privacypass/privacypass.hpp"

#include <gtest/gtest.h>

#include "common/io.hpp"
#include "core/analysis.hpp"

namespace dcpl::systems::privacypass {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<Issuer> issuer;
  std::unique_ptr<Origin> origin;
  std::unique_ptr<Client> client;

  Fixture() {
    book.set("issuer.example", core::benign_identity("addr:issuer.example"));
    book.set("origin.example", core::benign_identity("addr:origin.example"));
    // The client reaches services over an anonymity-preserving path (the
    // paper's motivating Tor user): its egress address is benign.
    book.set("tor-exit.example",
             core::benign_identity("addr:tor-exit.example"));

    issuer = std::make_unique<Issuer>("issuer.example", 1024, log, book, 1);
    issuer->register_account("alice");
    origin = std::make_unique<Origin>("origin.example", "origin.example",
                                      issuer->public_key(), log, book);
    client = std::make_unique<Client>("tor-exit.example", "alice",
                                      "issuer.example", issuer->public_key(),
                                      log, 7);
    sim.add_node(*issuer);
    sim.add_node(*origin);
    sim.add_node(*client);
  }
};

TEST(PrivacyPass, IssuanceProducesValidToken) {
  Fixture f;
  f.client->request_token(f.sim);
  f.sim.run();
  ASSERT_EQ(f.client->wallet().size(), 1u);
  EXPECT_EQ(f.issuer->tokens_issued(), 1u);
  const Token& t = f.client->wallet()[0];
  EXPECT_TRUE(crypto::blind_verify(f.issuer->public_key(), t.nonce,
                                   t.signature));
}

TEST(PrivacyPass, RedemptionGrantsAccess) {
  Fixture f;
  f.client->request_token(f.sim);
  f.sim.run();
  bool served = false;
  ASSERT_TRUE(f.client->access("origin.example", "/protected", f.sim,
                               [&](bool ok) { served = ok; }));
  f.sim.run();
  EXPECT_TRUE(served);
  EXPECT_EQ(f.origin->served(), 1u);
  EXPECT_EQ(f.client->accesses_granted(), 1u);
}

TEST(PrivacyPass, AccessWithoutTokenFails) {
  Fixture f;
  EXPECT_FALSE(f.client->access("origin.example", "/p", f.sim));
}

TEST(PrivacyPass, UnregisteredAccountDenied) {
  Fixture f;
  Client mallory("tor-exit2.example", "mallory", "issuer.example",
                 f.issuer->public_key(), f.log, 9);
  f.sim.add_node(mallory);
  mallory.request_token(f.sim);
  f.sim.run();
  EXPECT_TRUE(mallory.wallet().empty());
  EXPECT_EQ(f.issuer->requests_denied(), 1u);
}

TEST(PrivacyPass, TokenDoubleSpendRejected) {
  Fixture f;
  f.client->request_token(f.sim);
  f.sim.run();
  Token stolen = f.client->wallet()[0];

  f.client->access("origin.example", "/a", f.sim);
  f.sim.run();
  EXPECT_EQ(f.origin->served(), 1u);

  // Replay the identical token.
  ByteWriter w;
  w.u8(3);  // kAccessRequest
  w.vec(to_bytes("/b"), 1);
  w.vec(stolen.nonce, 1);
  w.vec(stolen.signature, 2);
  f.sim.send(net::Packet{"tor-exit.example", "origin.example",
                         std::move(w).take(), f.sim.new_context(),
                         "privacypass"});
  f.sim.run();
  EXPECT_EQ(f.origin->served(), 1u);
  EXPECT_EQ(f.origin->rejected(), 1u);
}

TEST(PrivacyPass, ForgedTokenRejected) {
  Fixture f;
  ByteWriter w;
  w.u8(3);
  w.vec(to_bytes("/x"), 1);
  w.vec(Bytes(32, 0x01), 1);
  w.vec(Bytes(128, 0x02), 2);
  f.sim.send(net::Packet{"tor-exit.example", "origin.example",
                         std::move(w).take(), f.sim.new_context(),
                         "privacypass"});
  f.sim.run();
  EXPECT_EQ(f.origin->served(), 0u);
  EXPECT_EQ(f.origin->rejected(), 1u);
}

// Paper table §3.2.1: Client (▲,●), Issuer (▲,⊙), Origin (△,●).
TEST(PrivacyPass, TableT3TuplesMatchPaper) {
  Fixture f;
  f.client->request_token(f.sim);
  f.sim.run();
  f.client->access("origin.example", "/sensitive", f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("tor-exit.example").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("issuer.example").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("origin.example").to_string(), "(△, ●)");
  EXPECT_TRUE(a.is_decoupled("tor-exit.example"));
}

TEST(PrivacyPass, IssuerNeverLearnsOriginOrNonce) {
  Fixture f;
  f.client->request_token(f.sim);
  f.sim.run();
  const std::string nonce_hex = to_hex(f.client->wallet()[0].nonce);
  f.client->access("origin.example", "/page", f.sim);
  f.sim.run();
  for (const auto& obs : f.log.for_party("issuer.example")) {
    EXPECT_EQ(obs.atom.label.find("origin"), std::string::npos);
    EXPECT_EQ(obs.atom.label.find(nonce_hex), std::string::npos);
  }
}

TEST(PrivacyPass, IssuerOriginCollusionCannotRelink) {
  // The trust-transfer claim: even pooling logs, issuance and redemption
  // share no linkage context (the blind signature severs it).
  Fixture f;
  f.client->request_token(f.sim);
  f.sim.run();
  f.client->access("origin.example", "/page", f.sim);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.coalition_recouples({"issuer.example", "origin.example"}));
}

TEST(PrivacyPass, ManyClientsManyTokens) {
  Fixture f;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    std::string account = "acct" + std::to_string(i);
    f.issuer->register_account(account);
    clients.push_back(std::make_unique<Client>(
        "exit" + std::to_string(i), account, "issuer.example",
        f.issuer->public_key(), f.log, 100 + i));
    f.sim.add_node(*clients.back());
    for (int t = 0; t < 3; ++t) clients.back()->request_token(f.sim);
  }
  f.sim.run();
  std::size_t granted = 0;
  for (auto& c : clients) {
    EXPECT_EQ(c->wallet().size(), 3u);
    while (c->access("origin.example", "/r", f.sim)) {
    }
  }
  f.sim.run();
  for (auto& c : clients) granted += c->accesses_granted();
  EXPECT_EQ(granted, 12u);
  EXPECT_EQ(f.origin->served(), 12u);
}


TEST(PrivacyPass, IssuanceRateLimitEnforced) {
  Fixture f;
  f.issuer->set_issuance_limit(2);
  for (int i = 0; i < 5; ++i) f.client->request_token(f.sim);
  f.sim.run();
  EXPECT_EQ(f.client->wallet().size(), 2u);
  EXPECT_EQ(f.issuer->tokens_issued(), 2u);
  EXPECT_EQ(f.issuer->requests_denied(), 3u);
  // The limit is per account: a different account still gets tokens.
  f.issuer->register_account("bob");
  Client bob("exit-bob", "bob", "issuer.example", f.issuer->public_key(),
             f.log, 55);
  f.sim.add_node(bob);
  bob.request_token(f.sim);
  f.sim.run();
  EXPECT_EQ(bob.wallet().size(), 1u);
}

}  // namespace
}  // namespace dcpl::systems::privacypass
