// BigInt arithmetic: identities, division invariants, Montgomery modexp
// against a reference implementation, inverse, gcd, primality.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"
#include "crypto/csprng.hpp"

namespace dcpl::crypto {
namespace {

BigInt random_bits(std::size_t bits, Rng& rng) {
  Bytes b = rng.bytes((bits + 7) / 8);
  std::size_t excess = b.size() * 8 - bits;
  b[0] &= static_cast<std::uint8_t>(0xff >> excess);
  return BigInt::from_bytes_be(b);
}

TEST(BigInt, BasicConstructionAndHex) {
  EXPECT_TRUE(BigInt{}.is_zero());
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_EQ(BigInt(0x1234).to_hex(), "1234");
  EXPECT_EQ(BigInt::from_hex("deadbeefcafebabe1122334455667788").to_hex(),
            "deadbeefcafebabe1122334455667788");
  EXPECT_EQ(BigInt::from_hex("00000001").to_hex(), "01");
  EXPECT_EQ(BigInt::from_hex("abc").to_hex(), "0abc");
}

TEST(BigInt, BytesRoundTripAndPadding) {
  BigInt v = BigInt::from_hex("0102030405");
  EXPECT_EQ(to_hex(v.to_bytes_be()), "0102030405");
  EXPECT_EQ(to_hex(v.to_bytes_be(8)), "0000000102030405");
  EXPECT_THROW(v.to_bytes_be(4), std::invalid_argument);
  EXPECT_EQ(to_hex(BigInt{}.to_bytes_be()), "00");
}

TEST(BigInt, BitLengthAndBits) {
  EXPECT_EQ(BigInt{}.bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(0xff).bit_length(), 8u);
  EXPECT_EQ((BigInt(1) << 100).bit_length(), 101u);
  BigInt v = BigInt(0b1011);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt(1) << 64, BigInt(0xffffffffffffffffULL));
  EXPECT_EQ(BigInt::from_hex("ff"), BigInt(255));
}

TEST(BigInt, AddSubIdentities) {
  XoshiroRng rng(11);
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_bits(256, rng);
    BigInt b = random_bits(200, rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
    EXPECT_EQ(a + BigInt{}, a);
    EXPECT_EQ(a - a, BigInt{});
  }
  EXPECT_THROW(BigInt(1) - BigInt(2), std::invalid_argument);
}

TEST(BigInt, AddCarryChain) {
  // (2^192 - 1) + 1 = 2^192.
  BigInt max = (BigInt(1) << 192) - BigInt(1);
  EXPECT_EQ(max + BigInt(1), BigInt(1) << 192);
}

TEST(BigInt, MulIdentities) {
  XoshiroRng rng(12);
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_bits(300, rng);
    BigInt b = random_bits(300, rng);
    BigInt c = random_bits(100, rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_EQ(a * BigInt{}, BigInt{});
  }
}

TEST(BigInt, ShiftsAreMulDivByPowersOfTwo) {
  XoshiroRng rng(13);
  for (int i = 0; i < 20; ++i) {
    BigInt a = random_bits(200, rng);
    for (std::size_t s : {1u, 13u, 63u, 64u, 65u, 130u}) {
      EXPECT_EQ(a << s, a * (BigInt(1) << s));
      EXPECT_EQ((a << s) >> s, a);
    }
  }
}

TEST(BigInt, DivModInvariant) {
  XoshiroRng rng(14);
  for (int i = 0; i < 100; ++i) {
    BigInt a = random_bits(50 + (i * 13) % 700, rng);
    BigInt b = random_bits(1 + (i * 7) % 400, rng);
    if (b.is_zero()) b = BigInt(3);
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigInt, DivModEdgeCases) {
  EXPECT_THROW(BigInt(1) / BigInt{}, std::invalid_argument);
  EXPECT_EQ(BigInt(7) / BigInt(7), BigInt(1));
  EXPECT_EQ(BigInt(7) % BigInt(7), BigInt{});
  EXPECT_EQ(BigInt(6) / BigInt(7), BigInt{});
  EXPECT_EQ(BigInt(6) % BigInt(7), BigInt(6));
  // Knuth-D "add back" territory: divisor with high limb pattern.
  BigInt a = BigInt::from_hex("7fffffffffffffff8000000000000000");
  BigInt b = BigInt::from_hex("80000000000000000000000000000001");
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
}

TEST(BigInt, DivisionStress) {
  // Dividends crafted to exercise qhat correction paths.
  XoshiroRng rng(15);
  for (int i = 0; i < 200; ++i) {
    BigInt b = random_bits(65 + i % 256, rng);
    if (b.is_zero()) continue;
    BigInt q0 = random_bits(1 + i % 128, rng);
    BigInt r0 = random_bits(b.bit_length() - 1, rng);
    if (r0 >= b) r0 = r0 % b;
    BigInt a = q0 * b + r0;
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q, q0);
    EXPECT_EQ(r, r0);
  }
}

// Reference modexp via repeated divmod (no Montgomery).
BigInt naive_mod_exp(const BigInt& base, const BigInt& exp, const BigInt& mod) {
  BigInt result(1);
  BigInt b = base % mod;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result) % mod;
    if (exp.bit(i)) result = (result * b) % mod;
  }
  return result;
}

TEST(BigInt, MontgomeryMatchesNaiveModExp) {
  XoshiroRng rng(16);
  for (int i = 0; i < 30; ++i) {
    BigInt mod = random_bits(128 + i * 8, rng);
    if (!mod.is_odd()) mod = mod + BigInt(1);
    if (mod <= BigInt(1)) mod = BigInt(3);
    BigInt base = random_bits(200, rng);
    BigInt exp = random_bits(64, rng);
    EXPECT_EQ(base.mod_exp(exp, mod), naive_mod_exp(base, exp, mod))
        << "i=" << i;
  }
}

TEST(BigInt, ModExpSmallKnownValues) {
  EXPECT_EQ(BigInt(2).mod_exp(BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(BigInt(3).mod_exp(BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(BigInt(5).mod_exp(BigInt(117), BigInt(19)), BigInt(1));  // Fermat
  // Even modulus path.
  EXPECT_EQ(BigInt(3).mod_exp(BigInt(4), BigInt(100)), BigInt(81));
}

TEST(BigInt, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p = 2^61 - 1.
  BigInt p = (BigInt(1) << 61) - BigInt(1);
  XoshiroRng rng(17);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::random_below(p - BigInt(1), rng) + BigInt(1);
    EXPECT_EQ(a.mod_exp(p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigInt, ModInverse) {
  XoshiroRng rng(18);
  BigInt p = (BigInt(1) << 61) - BigInt(1);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(p - BigInt(1), rng) + BigInt(1);
    BigInt inv = a.mod_inverse(p);
    EXPECT_EQ((a * inv) % p, BigInt(1));
  }
  // Composite modulus with coprime value.
  BigInt n = BigInt(91);  // 7 * 13
  EXPECT_EQ((BigInt(2) * BigInt(2).mod_inverse(n)) % n, BigInt(1));
  EXPECT_THROW(BigInt(7).mod_inverse(n), std::invalid_argument);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(31)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt{}, BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(5), BigInt{}), BigInt(5));
}

TEST(BigInt, RandomBelowIsUniformEnough) {
  XoshiroRng rng(19);
  BigInt bound(1000);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    BigInt v = BigInt::random_below(bound, rng);
    ASSERT_LT(v, bound);
    if (v < BigInt(500)) ++low;
  }
  EXPECT_GT(low, 800);
  EXPECT_LT(low, 1200);
}

TEST(BigInt, KnownPrimesAndComposites) {
  XoshiroRng rng(20);
  EXPECT_TRUE(BigInt(2).is_probable_prime(10, rng));
  EXPECT_TRUE(BigInt(65537).is_probable_prime(10, rng));
  EXPECT_TRUE(((BigInt(1) << 61) - BigInt(1)).is_probable_prime(10, rng));
  EXPECT_FALSE(BigInt(1).is_probable_prime(10, rng));
  EXPECT_FALSE(BigInt{}.is_probable_prime(10, rng));
  EXPECT_FALSE(BigInt(65536).is_probable_prime(10, rng));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(BigInt(561).is_probable_prime(10, rng));
  // 2^67 - 1 is composite (193707721 * 761838257287).
  EXPECT_FALSE(((BigInt(1) << 67) - BigInt(1)).is_probable_prime(10, rng));
}

TEST(BigInt, GeneratePrimeHasExactBitLength) {
  XoshiroRng rng(21);
  for (std::size_t bits : {64u, 128u, 256u}) {
    BigInt p = BigInt::generate_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(p.is_probable_prime(10, rng));
    // Top two bits set.
    EXPECT_TRUE(p.bit(bits - 1));
    EXPECT_TRUE(p.bit(bits - 2));
  }
}


TEST(BigInt, KaratsubaMatchesSchoolbookProperties) {
  // Operands above the Karatsuba threshold (24 limbs = 1536 bits): validate
  // via algebraic identities against the (schoolbook-sized) building blocks.
  XoshiroRng rng(22);
  for (int i = 0; i < 10; ++i) {
    BigInt a = random_bits(2000 + i * 173, rng);
    BigInt b = random_bits(1800 + i * 211, rng);
    BigInt c = random_bits(900, rng);
    // Distributivity ties the big product to smaller (schoolbook) products.
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    // Division inverts multiplication exactly.
    if (!b.is_zero()) {
      EXPECT_EQ((a * b) / b, a);
      EXPECT_EQ((a * b) % b, BigInt{});
    }
  }
}

TEST(BigInt, KaratsubaHugeSquare) {
  // (2^n - 1)^2 = 2^(2n) - 2^(n+1) + 1 — exact closed form at any size.
  for (std::size_t n : {1600u, 4096u, 10000u}) {
    BigInt x = (BigInt(1) << n) - BigInt(1);
    BigInt expected = (BigInt(1) << (2 * n)) - (BigInt(1) << (n + 1)) +
                      BigInt(1);
    EXPECT_EQ(x * x, expected) << n;
  }
}

TEST(BigInt, KaratsubaUnbalancedOperands) {
  XoshiroRng rng(23);
  BigInt big = random_bits(8000, rng);
  BigInt small = random_bits(100, rng);
  // One side below the threshold: must still be exact.
  EXPECT_EQ((big * small) / small, big);
  EXPECT_EQ(big * BigInt(1), big);
}

TEST(BigInt, LowLimbsSplitsCorrectly) {
  XoshiroRng rng(24);
  BigInt a = random_bits(1000, rng);
  for (std::size_t m : {1u, 5u, 15u, 16u, 100u}) {
    BigInt lo = a.low_limbs(m);
    BigInt hi = a >> (64 * m);
    EXPECT_EQ(lo + (hi << (64 * m)), a) << m;
  }
}

}  // namespace
}  // namespace dcpl::crypto
