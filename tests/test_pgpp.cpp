// PGPP (§3.2.3): token purchase, attachment in both core modes, the T5
// faceted table, and trajectory-linkability properties.
#include "systems/pgpp/pgpp.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::pgpp {
namespace {

const std::vector<std::pair<std::string, std::string>> kFacets = {
    {"human", "H"}, {"network", "N"}};

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<Gateway> gateway;
  std::unique_ptr<CellularCore> core_node;
  std::vector<std::unique_ptr<MobileUser>> users;

  explicit Fixture(CoreMode mode, std::size_t n_users = 1) {
    book.set("pgpp-gw.example", core::benign_identity("addr:pgpp-gw.example"));
    book.set("ngc.example", core::benign_identity("addr:ngc.example"));

    gateway = std::make_unique<Gateway>("pgpp-gw.example", 1024, log, book, 1);
    core_node = std::make_unique<CellularCore>(
        "ngc.example", mode, gateway->public_key(), log, book);
    sim.add_node(*gateway);
    sim.add_node(*core_node);

    for (std::size_t i = 0; i < n_users; ++i) {
      std::string addr = "ue" + std::to_string(i);
      std::string human = "user" + std::to_string(i);
      std::string imsi = "00101000000000" + std::to_string(i);
      book.set(addr, core::sensitive_identity("subscriber:" + human, "human"));
      core_node->register_subscriber(imsi, human);
      users.push_back(std::make_unique<MobileUser>(
          addr, human, imsi, "pgpp-gw.example", "ngc.example",
          gateway->public_key(), log, 100 + i));
      sim.add_node(*users.back());
    }
  }
};

TEST(Pgpp, BaselineAttachTracksImsi) {
  Fixture f(CoreMode::kBaselineImsi);
  f.users[0]->attach(3, 0, CoreMode::kBaselineImsi, f.sim);
  f.users[0]->attach(4, 1, CoreMode::kBaselineImsi, f.sim);
  f.sim.run();
  ASSERT_EQ(f.core_node->events().size(), 2u);
  EXPECT_EQ(f.core_node->events()[0].network_id,
            f.core_node->events()[1].network_id);
  EXPECT_EQ(f.core_node->attach_accepted(), 2u);
}

TEST(Pgpp, BaselineUnknownImsiRejected) {
  Fixture f(CoreMode::kBaselineImsi);
  MobileUser ghost("ue-ghost", "ghost", "999999", "pgpp-gw.example",
                   "ngc.example", f.gateway->public_key(), f.log, 9);
  f.sim.add_node(ghost);
  ghost.attach(1, 0, CoreMode::kBaselineImsi, f.sim);
  f.sim.run();
  EXPECT_EQ(f.core_node->attach_rejected(), 1u);
}

TEST(Pgpp, TokenPurchaseAndPgppAttach) {
  Fixture f(CoreMode::kPgpp);
  f.users[0]->buy_tokens(3, f.sim);
  f.sim.run();
  EXPECT_EQ(f.users[0]->tokens_available(), 3u);
  EXPECT_EQ(f.gateway->tokens_issued(), 3u);

  f.users[0]->attach(5, 0, CoreMode::kPgpp, f.sim);
  f.users[0]->attach(6, 1, CoreMode::kPgpp, f.sim);
  f.sim.run();
  EXPECT_EQ(f.core_node->attach_accepted(), 2u);
  EXPECT_EQ(f.users[0]->tokens_available(), 1u);
  // Pseudo-IMSIs differ across epochs: unlinkable at the core.
  ASSERT_EQ(f.core_node->events().size(), 2u);
  EXPECT_NE(f.core_node->events()[0].network_id,
            f.core_node->events()[1].network_id);
}

TEST(Pgpp, AttachWithoutTokensIsNoop) {
  Fixture f(CoreMode::kPgpp);
  f.users[0]->attach(1, 0, CoreMode::kPgpp, f.sim);
  f.sim.run();
  EXPECT_EQ(f.core_node->attach_accepted(), 0u);
}

TEST(Pgpp, ReplayedTokenRejected) {
  Fixture f(CoreMode::kPgpp);
  f.users[0]->buy_tokens(1, f.sim);
  f.sim.run();
  f.users[0]->attach(1, 0, CoreMode::kPgpp, f.sim);
  f.sim.run();
  EXPECT_EQ(f.core_node->attach_accepted(), 1u);

  // Capture-and-replay of the first attach message would reuse the token
  // nonce; the core's spent-set rejects it. Simulate via a forged attach
  // with a fresh user but a junk token.
  MobileUser evil("ue-evil", "evil", "123", "pgpp-gw.example", "ngc.example",
                  f.gateway->public_key(), f.log, 66);
  f.sim.add_node(evil);
  evil.attach(1, 1, CoreMode::kPgpp, f.sim);  // no tokens -> noop
  f.sim.run();
  EXPECT_EQ(f.core_node->attach_accepted(), 1u);
}

// Paper table §3.2.3:
//   User (▲H, ▲N, ●)   PGPP-GW (▲H, △N, ⊙)   NGC (△H, △N, ●)
TEST(Pgpp, TableT5FacetedTuplesMatchPaper) {
  Fixture f(CoreMode::kPgpp);
  f.users[0]->buy_tokens(2, f.sim);
  f.sim.run();
  f.users[0]->attach(3, 0, CoreMode::kPgpp, f.sim);
  f.users[0]->attach(4, 1, CoreMode::kPgpp, f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.faceted_tuple("ue0", kFacets), "(▲H, ▲N, ●)");
  EXPECT_EQ(a.faceted_tuple("pgpp-gw.example", kFacets), "(▲H, △N, ⊙)");
  EXPECT_EQ(a.faceted_tuple("ngc.example", kFacets), "(△H, △N, ●)");
  EXPECT_TRUE(a.is_decoupled("ue0"));
}

TEST(Pgpp, BaselineCoreCouplesEverything) {
  Fixture f(CoreMode::kBaselineImsi);
  f.users[0]->attach(3, 0, CoreMode::kBaselineImsi, f.sim);
  f.sim.run();

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.faceted_tuple("ngc.example", kFacets), "(▲H, ▲N, ●)");
  EXPECT_FALSE(a.is_decoupled("ue0"));
  EXPECT_TRUE(a.breach("ngc.example").coupled());
}

TEST(Pgpp, PgppCoreBreachDoesNotCouple) {
  Fixture f(CoreMode::kPgpp);
  f.users[0]->buy_tokens(1, f.sim);
  f.sim.run();
  f.users[0]->attach(3, 0, CoreMode::kPgpp, f.sim);
  f.sim.run();
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.breach("ngc.example").coupled());
  EXPECT_FALSE(a.breach("pgpp-gw.example").coupled());
}

TEST(Pgpp, GatewayNeverSeesLocations) {
  Fixture f(CoreMode::kPgpp);
  f.users[0]->buy_tokens(2, f.sim);
  f.sim.run();
  f.users[0]->attach(7, 0, CoreMode::kPgpp, f.sim);
  f.sim.run();
  for (const auto& obs : f.log.for_party("pgpp-gw.example")) {
    EXPECT_EQ(obs.atom.label.find("loc:"), std::string::npos);
  }
}

TEST(Pgpp, TrajectoriesUnlinkableAcrossEpochs) {
  // Two users moving for 5 epochs; core sees 10 distinct pseudo-IMSIs.
  Fixture f(CoreMode::kPgpp, 2);
  for (auto& u : f.users) u->buy_tokens(5, f.sim);
  f.sim.run();
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    for (std::size_t i = 0; i < 2; ++i) {
      f.users[i]->attach(static_cast<std::uint16_t>(epoch + i), epoch,
                         CoreMode::kPgpp, f.sim);
    }
  }
  f.sim.run();
  std::set<std::string> ids;
  for (const auto& e : f.core_node->events()) ids.insert(e.network_id);
  EXPECT_EQ(ids.size(), 10u);
}


TEST(Pgpp, GatewayBillingEnforced) {
  Fixture f(CoreMode::kPgpp);
  f.gateway->set_enforce_billing(true);
  f.gateway->credit_account("user0", 2);
  f.users[0]->buy_tokens(4, f.sim);
  f.sim.run();
  // Only two tokens funded; the rest silently denied.
  EXPECT_EQ(f.users[0]->tokens_available(), 2u);
  EXPECT_EQ(f.gateway->credit("user0"), 0u);
  EXPECT_EQ(f.gateway->tokens_issued(), 2u);
  // Both funded tokens authorize attachments.
  f.users[0]->attach(1, 0, CoreMode::kPgpp, f.sim);
  f.users[0]->attach(2, 1, CoreMode::kPgpp, f.sim);
  f.sim.run();
  EXPECT_EQ(f.core_node->attach_accepted(), 2u);
}

TEST(Pgpp, UnfundedAccountGetsNothing) {
  Fixture f(CoreMode::kPgpp);
  f.gateway->set_enforce_billing(true);
  f.users[0]->buy_tokens(1, f.sim);  // never credited
  f.sim.run();
  EXPECT_EQ(f.users[0]->tokens_available(), 0u);
  EXPECT_EQ(f.gateway->tokens_issued(), 0u);
}

}  // namespace
}  // namespace dcpl::systems::pgpp
