// ODNS/ODoH (§3.2.2): iterative resolution over a simulated hierarchy,
// Do53/DoH/ODoH modes, caching, and the paper's T4 table.
#include "systems/odoh/odoh.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace dcpl::systems::odoh {
namespace {

struct Fixture {
  net::Simulator sim;
  core::ObservationLog log;
  core::AddressBook book;

  std::unique_ptr<AuthorityNode> root;
  std::unique_ptr<AuthorityNode> tld;
  std::unique_ptr<AuthorityNode> auth;
  std::unique_ptr<ResolverNode> resolver;  // user's recursive (Do53 / DoH)
  std::unique_ptr<ResolverNode> target;    // ODoH oblivious target
  std::unique_ptr<OdohProxy> proxy;
  std::unique_ptr<StubClient> client;

  Fixture() {
    for (const char* a : {"198.41.0.4", "192.5.6.30", "192.0.2.53",
                          "resolver.example", "target.example",
                          "proxy.example"}) {
      book.set(a, core::benign_identity(std::string("addr:") + a));
    }

    dns::Zone root_zone("");
    root_zone.delegate("com", "a.gtld-servers.net", "192.5.6.30");
    dns::Zone com_zone("com");
    com_zone.delegate("example.com", "ns1.example.com", "192.0.2.53");
    dns::Zone example_zone("example.com");
    example_zone.add_a("www.example.com", "203.0.113.10");
    example_zone.add_cname("blog.example.com", "www.example.com");
    example_zone.add_a("mail.example.com", "203.0.113.25");

    root = std::make_unique<AuthorityNode>("198.41.0.4", std::move(root_zone),
                                           log, book);
    tld = std::make_unique<AuthorityNode>("192.5.6.30", std::move(com_zone),
                                          log, book);
    auth = std::make_unique<AuthorityNode>("192.0.2.53",
                                           std::move(example_zone), log, book);
    resolver = std::make_unique<ResolverNode>("resolver.example", "198.41.0.4",
                                              log, book, 1);
    target = std::make_unique<ResolverNode>("target.example", "198.41.0.4",
                                            log, book, 2);
    proxy = std::make_unique<OdohProxy>("proxy.example", "target.example", log,
                                        book);
    book.set("10.0.0.1", core::sensitive_identity("user:alice", "network"));
    client = std::make_unique<StubClient>("10.0.0.1", "user:alice", log, 7);

    sim.add_node(*root);
    sim.add_node(*tld);
    sim.add_node(*auth);
    sim.add_node(*resolver);
    sim.add_node(*target);
    sim.add_node(*proxy);
    sim.add_node(*client);
  }

  std::string resolve(const std::string& name, Mode mode) {
    std::string result = "<none>";
    const auto& key = (mode == Mode::kOdoh ? target : resolver)->key();
    client->query(name, mode, mode == Mode::kOdoh ? "" : "resolver.example",
                  key.public_key, "proxy.example", sim,
                  [&](const dns::Message& m) {
                    for (const auto& rr : m.answers) {
                      if (rr.type == dns::RecordType::kA) {
                        result = dns::rdata_to_ipv4(rr.rdata);
                      }
                    }
                    if (m.rcode == dns::Rcode::kNxDomain) result = "<nxdomain>";
                  });
    sim.run();
    return result;
  }
};

TEST(Odoh, Do53ResolvesThroughHierarchy) {
  Fixture f;
  EXPECT_EQ(f.resolve("www.example.com", Mode::kDo53), "203.0.113.10");
  // Root, TLD, and authoritative all answered once.
  EXPECT_EQ(f.root->queries_answered(), 1u);
  EXPECT_EQ(f.tld->queries_answered(), 1u);
  EXPECT_EQ(f.auth->queries_answered(), 1u);
}

TEST(Odoh, CnameChased) {
  Fixture f;
  EXPECT_EQ(f.resolve("blog.example.com", Mode::kDo53), "203.0.113.10");
}

TEST(Odoh, NxDomainPropagates) {
  Fixture f;
  EXPECT_EQ(f.resolve("missing.example.com", Mode::kDo53), "<nxdomain>");
}

TEST(Odoh, CacheServesRepeatQueries) {
  Fixture f;
  EXPECT_EQ(f.resolve("www.example.com", Mode::kDo53), "203.0.113.10");
  EXPECT_EQ(f.resolve("www.example.com", Mode::kDo53), "203.0.113.10");
  EXPECT_EQ(f.resolver->cache_hits(), 1u);
  EXPECT_EQ(f.root->queries_answered(), 1u);  // no second walk
}

TEST(Odoh, DohResolves) {
  Fixture f;
  EXPECT_EQ(f.resolve("www.example.com", Mode::kDoh), "203.0.113.10");
}

TEST(Odoh, OdohResolvesViaProxy) {
  Fixture f;
  EXPECT_EQ(f.resolve("www.example.com", Mode::kOdoh), "203.0.113.10");
  EXPECT_EQ(f.proxy->forwarded(), 1u);
  EXPECT_EQ(f.resolver->resolutions(), 0u);  // user's resolver not involved
  EXPECT_EQ(f.target->resolutions(), 1u);
}

// Paper table §3.2.2 (proxy = the paper's "Resolver" column, target = the
// "Oblivious Resolver"): Client (▲,●), Proxy (▲,⊙), Target (△,⊙/●).
TEST(Odoh, TableT4TuplesMatchPaper) {
  Fixture f;
  f.resolve("www.example.com", Mode::kOdoh);

  core::DecouplingAnalysis a(f.log);
  EXPECT_EQ(a.tuple_for("10.0.0.1").to_string(), "(▲, ●)");
  EXPECT_EQ(a.tuple_for("proxy.example").to_string(), "(▲, ⊙)");
  EXPECT_EQ(a.tuple_for("target.example").to_string(), "(△, ⊙/●)");
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
}

TEST(Odoh, Do53ResolverSeesEverything) {
  Fixture f;
  f.resolve("www.example.com", Mode::kDo53);
  core::DecouplingAnalysis a(f.log);
  // The classic recursive resolver couples who with what: (▲, ⊙/●).
  auto t = a.tuple_for("resolver.example");
  EXPECT_TRUE(t.sensitive_identity);
  EXPECT_TRUE(t.sensitive_data);
  EXPECT_FALSE(a.is_decoupled("10.0.0.1"));
}

TEST(Odoh, DohEncryptsInTransitButDoesNotDecouple) {
  // DoH hides the query from the network, yet the resolver still holds
  // (▲, ●) — the §3.3 lesson generalized.
  Fixture f;
  f.resolve("www.example.com", Mode::kDoh);
  core::DecouplingAnalysis a(f.log);
  auto t = a.tuple_for("resolver.example");
  EXPECT_TRUE(t.sensitive_identity);
  EXPECT_TRUE(t.sensitive_data);
  EXPECT_FALSE(a.is_decoupled("10.0.0.1"));
}

TEST(Odoh, ProxyNeverSeesQueryName) {
  Fixture f;
  f.resolve("www.example.com", Mode::kOdoh);
  for (const auto& obs : f.log.for_party("proxy.example")) {
    EXPECT_EQ(obs.atom.label.find("example.com"), std::string::npos);
    EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveData);
  }
}

TEST(Odoh, TargetNeverSeesClientAddress) {
  Fixture f;
  f.resolve("www.example.com", Mode::kOdoh);
  for (const auto& obs : f.log.for_party("target.example")) {
    EXPECT_EQ(obs.atom.label.find("10.0.0.1"), std::string::npos);
    EXPECT_EQ(obs.atom.label.find("alice"), std::string::npos);
    EXPECT_NE(obs.atom.kind, core::AtomKind::kSensitiveIdentity);
  }
}

TEST(Odoh, ProxyTargetCollusionRecouples) {
  Fixture f;
  f.resolve("www.example.com", Mode::kOdoh);
  core::DecouplingAnalysis a(f.log);
  EXPECT_FALSE(a.breach("proxy.example").coupled());
  EXPECT_FALSE(a.breach("target.example").coupled());
  EXPECT_TRUE(
      a.coalition_recouples({"proxy.example", "target.example"}));
}

TEST(Odoh, GarbageQueriesDropped) {
  Fixture f;
  f.sim.send(net::Packet{"10.0.0.1", "resolver.example", Bytes(40, 0x5a),
                         f.sim.new_context(), "dns"});
  f.sim.send(net::Packet{"10.0.0.1", "resolver.example", Bytes(40, 0x5a),
                         f.sim.new_context(), "doh"});
  f.sim.run();
  EXPECT_EQ(f.resolver->resolutions(), 0u);
}

TEST(Odoh, ConcurrentQueriesFromManyClients) {
  Fixture f;
  std::vector<std::unique_ptr<StubClient>> clients;
  int answered = 0;
  for (int i = 0; i < 6; ++i) {
    std::string addr = "10.0.2." + std::to_string(i + 1);
    f.book.set(addr, core::sensitive_identity("user:u" + std::to_string(i),
                                              "network"));
    clients.push_back(std::make_unique<StubClient>(
        addr, "user:u" + std::to_string(i), f.log, 300 + i));
    f.sim.add_node(*clients.back());
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i]->query(i % 2 == 0 ? "www.example.com" : "mail.example.com",
                      Mode::kOdoh, "", f.target->key().public_key,
                      "proxy.example", f.sim,
                      [&](const dns::Message&) { ++answered; });
  }
  f.sim.run();
  EXPECT_EQ(answered, 6);
}


TEST(Odoh, QnameMinimizationStillResolves) {
  Fixture f;
  f.resolver->set_qname_minimization(true);
  EXPECT_EQ(f.resolve("www.example.com", Mode::kDo53), "203.0.113.10");
  EXPECT_EQ(f.resolve("blog.example.com", Mode::kDo53), "203.0.113.10");
  EXPECT_EQ(f.resolve("missing.example.com", Mode::kDo53), "<nxdomain>");
}

TEST(Odoh, QnameMinimizationHidesFullNameFromRootAndTld) {
  Fixture f;
  f.resolver->set_qname_minimization(true);
  f.resolve("www.example.com", Mode::kDo53);
  // Root saw only "com"; TLD saw only "example.com".
  for (const auto& obs : f.log.for_party("198.41.0.4")) {
    if (!obs.atom.label.starts_with("query:")) continue;
    EXPECT_EQ(obs.atom.label, "query:com");
  }
  for (const auto& obs : f.log.for_party("192.5.6.30")) {
    if (!obs.atom.label.starts_with("query:")) continue;
    EXPECT_EQ(obs.atom.label, "query:example.com");
  }
  // The leaf authority must still see the full name (it answers it).
  bool auth_saw_full = false;
  for (const auto& obs : f.log.for_party("192.0.2.53")) {
    if (obs.atom.label == "query:www.example.com") auth_saw_full = true;
  }
  EXPECT_TRUE(auth_saw_full);
}

TEST(Odoh, WithoutMinimizationRootSeesFullName) {
  Fixture f;
  f.resolve("www.example.com", Mode::kDo53);
  bool root_saw_full = false;
  for (const auto& obs : f.log.for_party("198.41.0.4")) {
    if (obs.atom.label == "query:www.example.com") root_saw_full = true;
  }
  EXPECT_TRUE(root_saw_full);
}

TEST(Odoh, QnameMinimizationWithDeepName) {
  // a.b.example.com forces the minimized walk to reveal label by label at
  // the example.com authority.
  Fixture f;
  f.auth->zone().add_a("a.b.example.com", "203.0.113.99");
  f.resolver->set_qname_minimization(true);
  EXPECT_EQ(f.resolve("a.b.example.com", Mode::kDo53), "203.0.113.99");
}

TEST(Odoh, QnameMinimizationComposesWithOdoh) {
  Fixture f;
  f.target->set_qname_minimization(true);
  EXPECT_EQ(f.resolve("www.example.com", Mode::kOdoh), "203.0.113.10");
  core::DecouplingAnalysis a(f.log);
  EXPECT_TRUE(a.is_decoupled("10.0.0.1"));
  // Defense in depth: neither the proxy, nor the root, sees the full story.
  for (const auto& obs : f.log.for_party("198.41.0.4")) {
    if (!obs.atom.label.starts_with("query:")) continue;
    EXPECT_EQ(obs.atom.label.find("www"), std::string::npos);
  }
}


TEST(Odoh, CacheExpiresAfterTtl) {
  Fixture f;
  f.auth->zone().add_a("shortttl.example.com", "203.0.113.77", /*ttl=*/1);
  EXPECT_EQ(f.resolve("shortttl.example.com", Mode::kDo53), "203.0.113.77");
  const std::size_t walks_before = f.root->queries_answered();

  // Within the TTL: served from cache.
  EXPECT_EQ(f.resolve("shortttl.example.com", Mode::kDo53), "203.0.113.77");
  EXPECT_EQ(f.root->queries_answered(), walks_before);
  EXPECT_EQ(f.resolver->cache_hits(), 1u);

  // Jump past the 1-second TTL and query again: full re-walk.
  f.sim.at(f.sim.now() + 2'000'000, [] {});
  f.sim.run();
  EXPECT_EQ(f.resolve("shortttl.example.com", Mode::kDo53), "203.0.113.77");
  EXPECT_EQ(f.root->queries_answered(), walks_before + 1);
}


TEST(Odoh, NegativeCachingSuppressesRepeatedMisses) {
  Fixture f;
  EXPECT_EQ(f.resolve("missing.example.com", Mode::kDo53), "<nxdomain>");
  const std::size_t walks = f.root->queries_answered();
  EXPECT_EQ(f.resolve("missing.example.com", Mode::kDo53), "<nxdomain>");
  EXPECT_EQ(f.root->queries_answered(), walks);  // served from negative cache
  EXPECT_EQ(f.resolver->cache_hits(), 1u);
}

TEST(Odoh, NegativeCacheExpires) {
  Fixture f;
  f.resolver->set_negative_ttl(1);  // 1 second
  EXPECT_EQ(f.resolve("missing.example.com", Mode::kDo53), "<nxdomain>");
  const std::size_t walks = f.root->queries_answered();
  f.sim.at(f.sim.now() + 2'000'000, [] {});
  f.sim.run();
  EXPECT_EQ(f.resolve("missing.example.com", Mode::kDo53), "<nxdomain>");
  EXPECT_GT(f.root->queries_answered(), walks);
}

}  // namespace
}  // namespace dcpl::systems::odoh
