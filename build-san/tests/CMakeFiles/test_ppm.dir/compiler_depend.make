# Empty compiler generated dependencies file for test_ppm.
# This may be replaced when dependencies are built.
