file(REMOVE_RECURSE
  "CMakeFiles/test_ppm.dir/test_ppm.cpp.o"
  "CMakeFiles/test_ppm.dir/test_ppm.cpp.o.d"
  "test_ppm"
  "test_ppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
