file(REMOVE_RECURSE
  "CMakeFiles/test_mixnet.dir/test_mixnet.cpp.o"
  "CMakeFiles/test_mixnet.dir/test_mixnet.cpp.o.d"
  "test_mixnet"
  "test_mixnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
