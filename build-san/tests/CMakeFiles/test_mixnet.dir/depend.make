# Empty dependencies file for test_mixnet.
# This may be replaced when dependencies are built.
