file(REMOVE_RECURSE
  "CMakeFiles/test_privacypass.dir/test_privacypass.cpp.o"
  "CMakeFiles/test_privacypass.dir/test_privacypass.cpp.o.d"
  "test_privacypass"
  "test_privacypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_privacypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
