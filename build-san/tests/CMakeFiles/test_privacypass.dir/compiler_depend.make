# Empty compiler generated dependencies file for test_privacypass.
# This may be replaced when dependencies are built.
