# Empty dependencies file for test_ech.
# This may be replaced when dependencies are built.
