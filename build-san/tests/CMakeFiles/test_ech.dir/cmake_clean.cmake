file(REMOVE_RECURSE
  "CMakeFiles/test_ech.dir/test_ech.cpp.o"
  "CMakeFiles/test_ech.dir/test_ech.cpp.o.d"
  "test_ech"
  "test_ech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
