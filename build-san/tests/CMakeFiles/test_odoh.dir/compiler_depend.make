# Empty compiler generated dependencies file for test_odoh.
# This may be replaced when dependencies are built.
