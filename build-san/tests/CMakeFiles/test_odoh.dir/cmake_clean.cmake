file(REMOVE_RECURSE
  "CMakeFiles/test_odoh.dir/test_odoh.cpp.o"
  "CMakeFiles/test_odoh.dir/test_odoh.cpp.o.d"
  "test_odoh"
  "test_odoh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odoh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
