# Empty compiler generated dependencies file for test_pgpp.
# This may be replaced when dependencies are built.
