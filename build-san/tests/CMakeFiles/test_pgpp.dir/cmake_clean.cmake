file(REMOVE_RECURSE
  "CMakeFiles/test_pgpp.dir/test_pgpp.cpp.o"
  "CMakeFiles/test_pgpp.dir/test_pgpp.cpp.o.d"
  "test_pgpp"
  "test_pgpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pgpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
