file(REMOVE_RECURSE
  "CMakeFiles/test_hpke.dir/test_hpke.cpp.o"
  "CMakeFiles/test_hpke.dir/test_hpke.cpp.o.d"
  "test_hpke"
  "test_hpke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
