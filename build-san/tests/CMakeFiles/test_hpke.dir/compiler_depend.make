# Empty compiler generated dependencies file for test_hpke.
# This may be replaced when dependencies are built.
