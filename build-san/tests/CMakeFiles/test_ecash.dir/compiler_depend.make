# Empty compiler generated dependencies file for test_ecash.
# This may be replaced when dependencies are built.
