file(REMOVE_RECURSE
  "CMakeFiles/test_ecash.dir/test_ecash.cpp.o"
  "CMakeFiles/test_ecash.dir/test_ecash.cpp.o.d"
  "test_ecash"
  "test_ecash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
