# Empty dependencies file for test_ohttp.
# This may be replaced when dependencies are built.
