file(REMOVE_RECURSE
  "CMakeFiles/test_ohttp.dir/test_ohttp.cpp.o"
  "CMakeFiles/test_ohttp.dir/test_ohttp.cpp.o.d"
  "test_ohttp"
  "test_ohttp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ohttp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
