file(REMOVE_RECURSE
  "CMakeFiles/test_x25519.dir/test_x25519.cpp.o"
  "CMakeFiles/test_x25519.dir/test_x25519.cpp.o.d"
  "test_x25519"
  "test_x25519.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x25519.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
