# Empty dependencies file for test_x25519.
# This may be replaced when dependencies are built.
