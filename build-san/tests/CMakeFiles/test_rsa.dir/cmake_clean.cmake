file(REMOVE_RECURSE
  "CMakeFiles/test_rsa.dir/test_rsa.cpp.o"
  "CMakeFiles/test_rsa.dir/test_rsa.cpp.o.d"
  "test_rsa"
  "test_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
