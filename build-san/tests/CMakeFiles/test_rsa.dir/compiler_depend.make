# Empty compiler generated dependencies file for test_rsa.
# This may be replaced when dependencies are built.
