file(REMOVE_RECURSE
  "CMakeFiles/test_sha512.dir/test_sha512.cpp.o"
  "CMakeFiles/test_sha512.dir/test_sha512.cpp.o.d"
  "test_sha512"
  "test_sha512.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
