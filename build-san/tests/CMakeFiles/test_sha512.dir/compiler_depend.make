# Empty compiler generated dependencies file for test_sha512.
# This may be replaced when dependencies are built.
