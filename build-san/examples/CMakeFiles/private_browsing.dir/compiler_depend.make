# Empty compiler generated dependencies file for private_browsing.
# This may be replaced when dependencies are built.
