file(REMOVE_RECURSE
  "CMakeFiles/private_browsing.dir/private_browsing.cpp.o"
  "CMakeFiles/private_browsing.dir/private_browsing.cpp.o.d"
  "private_browsing"
  "private_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
