file(REMOVE_RECURSE
  "CMakeFiles/anonymous_payment.dir/anonymous_payment.cpp.o"
  "CMakeFiles/anonymous_payment.dir/anonymous_payment.cpp.o.d"
  "anonymous_payment"
  "anonymous_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
