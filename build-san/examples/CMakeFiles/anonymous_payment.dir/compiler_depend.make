# Empty compiler generated dependencies file for anonymous_payment.
# This may be replaced when dependencies are built.
