file(REMOVE_RECURSE
  "CMakeFiles/anonymous_survey.dir/anonymous_survey.cpp.o"
  "CMakeFiles/anonymous_survey.dir/anonymous_survey.cpp.o.d"
  "anonymous_survey"
  "anonymous_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
