# Empty compiler generated dependencies file for anonymous_survey.
# This may be replaced when dependencies are built.
