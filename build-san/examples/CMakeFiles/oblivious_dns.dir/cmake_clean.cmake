file(REMOVE_RECURSE
  "CMakeFiles/oblivious_dns.dir/oblivious_dns.cpp.o"
  "CMakeFiles/oblivious_dns.dir/oblivious_dns.cpp.o.d"
  "oblivious_dns"
  "oblivious_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblivious_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
