# Empty compiler generated dependencies file for oblivious_dns.
# This may be replaced when dependencies are built.
