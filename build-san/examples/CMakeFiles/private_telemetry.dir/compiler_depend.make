# Empty compiler generated dependencies file for private_telemetry.
# This may be replaced when dependencies are built.
