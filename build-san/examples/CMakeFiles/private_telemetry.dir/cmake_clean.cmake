file(REMOVE_RECURSE
  "CMakeFiles/private_telemetry.dir/private_telemetry.cpp.o"
  "CMakeFiles/private_telemetry.dir/private_telemetry.cpp.o.d"
  "private_telemetry"
  "private_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
