file(REMOVE_RECURSE
  "CMakeFiles/onion_browsing.dir/onion_browsing.cpp.o"
  "CMakeFiles/onion_browsing.dir/onion_browsing.cpp.o.d"
  "onion_browsing"
  "onion_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onion_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
