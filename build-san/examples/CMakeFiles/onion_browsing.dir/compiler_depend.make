# Empty compiler generated dependencies file for onion_browsing.
# This may be replaced when dependencies are built.
