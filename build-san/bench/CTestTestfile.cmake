# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-san/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_tables_json "/root/repo/build-san/bench/bench_tables" "--json" "/root/repo/build-san/bench/bench_tables_report.json" "--trace" "/root/repo/build-san/bench/bench_tables_trace.json" "--flow-log" "/root/repo/build-san/bench/bench_tables_flow.jsonl" "--prom" "/root/repo/build-san/bench/bench_tables_metrics.prom")
set_tests_properties(bench_tables_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_tables_report_schema "/root/repo/build-san/bench/report_check" "/root/repo/build-san/bench/bench_tables_report.json" "--min-tables" "8" "--require-flow" "--trace" "/root/repo/build-san/bench/bench_tables_trace.json")
set_tests_properties(bench_tables_report_schema PROPERTIES  DEPENDS "bench_tables_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_breach_json "/root/repo/build-san/bench/bench_breach" "--json" "/root/repo/build-san/bench/bench_breach_report.json" "--flow-log" "/root/repo/build-san/bench/bench_breach_flow.jsonl")
set_tests_properties(bench_breach_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;57;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_breach_report_schema "/root/repo/build-san/bench/report_check" "/root/repo/build-san/bench/bench_breach_report.json" "--require-faults" "--require-flow")
set_tests_properties(bench_breach_report_schema PROPERTIES  DEPENDS "bench_breach_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;61;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scale_json "/root/repo/build-san/bench/bench_scale" "--users" "2000" "--flow" "--json" "/root/repo/build-san/bench/bench_scale_report.json")
set_tests_properties(bench_scale_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;70;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scale_report_schema "/root/repo/build-san/bench/report_check" "/root/repo/build-san/bench/bench_scale_report.json")
set_tests_properties(bench_scale_report_schema PROPERTIES  DEPENDS "bench_scale_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;73;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scale_baseline_self "/root/repo/build-san/bench/report_check" "/root/repo/build-san/bench/bench_scale_report.json" "--baseline" "/root/repo/build-san/bench/bench_scale_report.json")
set_tests_properties(bench_scale_baseline_self PROPERTIES  DEPENDS "bench_scale_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;82;add_test;/root/repo/bench/CMakeLists.txt;0;")
