file(REMOVE_RECURSE
  "CMakeFiles/bench_ppm_ops.dir/bench_ppm_ops.cpp.o"
  "CMakeFiles/bench_ppm_ops.dir/bench_ppm_ops.cpp.o.d"
  "bench_ppm_ops"
  "bench_ppm_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
