# Empty dependencies file for bench_ppm_ops.
# This may be replaced when dependencies are built.
