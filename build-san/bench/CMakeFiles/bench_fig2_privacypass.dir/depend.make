# Empty dependencies file for bench_fig2_privacypass.
# This may be replaced when dependencies are built.
