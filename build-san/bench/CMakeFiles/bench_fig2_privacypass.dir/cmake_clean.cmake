file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_privacypass.dir/bench_fig2_privacypass.cpp.o"
  "CMakeFiles/bench_fig2_privacypass.dir/bench_fig2_privacypass.cpp.o.d"
  "bench_fig2_privacypass"
  "bench_fig2_privacypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_privacypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
