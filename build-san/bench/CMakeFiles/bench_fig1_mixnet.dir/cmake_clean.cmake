file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mixnet.dir/bench_fig1_mixnet.cpp.o"
  "CMakeFiles/bench_fig1_mixnet.dir/bench_fig1_mixnet.cpp.o.d"
  "bench_fig1_mixnet"
  "bench_fig1_mixnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mixnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
