# Empty dependencies file for bench_fig1_mixnet.
# This may be replaced when dependencies are built.
