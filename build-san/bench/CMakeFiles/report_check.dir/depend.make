# Empty dependencies file for report_check.
# This may be replaced when dependencies are built.
