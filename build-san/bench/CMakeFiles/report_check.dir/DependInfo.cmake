
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/report_check.cpp" "bench/CMakeFiles/report_check.dir/report_check.cpp.o" "gcc" "bench/CMakeFiles/report_check.dir/report_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/obs/CMakeFiles/decoupling_obs.dir/DependInfo.cmake"
  "/root/repo/build-san/src/core/CMakeFiles/decoupling_core.dir/DependInfo.cmake"
  "/root/repo/build-san/src/common/CMakeFiles/decoupling_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
