file(REMOVE_RECURSE
  "CMakeFiles/report_check.dir/report_check.cpp.o"
  "CMakeFiles/report_check.dir/report_check.cpp.o.d"
  "report_check"
  "report_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
