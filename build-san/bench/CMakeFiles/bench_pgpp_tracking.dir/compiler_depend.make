# Empty compiler generated dependencies file for bench_pgpp_tracking.
# This may be replaced when dependencies are built.
