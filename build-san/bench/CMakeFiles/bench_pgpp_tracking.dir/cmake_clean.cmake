file(REMOVE_RECURSE
  "CMakeFiles/bench_pgpp_tracking.dir/bench_pgpp_tracking.cpp.o"
  "CMakeFiles/bench_pgpp_tracking.dir/bench_pgpp_tracking.cpp.o.d"
  "bench_pgpp_tracking"
  "bench_pgpp_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pgpp_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
