# Empty dependencies file for bench_traffic_analysis.
# This may be replaced when dependencies are built.
