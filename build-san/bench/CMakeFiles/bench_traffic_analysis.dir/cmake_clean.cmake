file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_analysis.dir/bench_traffic_analysis.cpp.o"
  "CMakeFiles/bench_traffic_analysis.dir/bench_traffic_analysis.cpp.o.d"
  "bench_traffic_analysis"
  "bench_traffic_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
