# Empty dependencies file for bench_collusion.
# This may be replaced when dependencies are built.
