file(REMOVE_RECURSE
  "CMakeFiles/bench_collusion.dir/bench_collusion.cpp.o"
  "CMakeFiles/bench_collusion.dir/bench_collusion.cpp.o.d"
  "bench_collusion"
  "bench_collusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
