# Empty dependencies file for bench_onion_circuit.
# This may be replaced when dependencies are built.
