file(REMOVE_RECURSE
  "CMakeFiles/bench_onion_circuit.dir/bench_onion_circuit.cpp.o"
  "CMakeFiles/bench_onion_circuit.dir/bench_onion_circuit.cpp.o.d"
  "bench_onion_circuit"
  "bench_onion_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_onion_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
