# Empty compiler generated dependencies file for bench_degree_aggregators.
# This may be replaced when dependencies are built.
