file(REMOVE_RECURSE
  "CMakeFiles/bench_degree_aggregators.dir/bench_degree_aggregators.cpp.o"
  "CMakeFiles/bench_degree_aggregators.dir/bench_degree_aggregators.cpp.o.d"
  "bench_degree_aggregators"
  "bench_degree_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degree_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
