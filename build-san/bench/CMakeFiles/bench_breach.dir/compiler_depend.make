# Empty compiler generated dependencies file for bench_breach.
# This may be replaced when dependencies are built.
