file(REMOVE_RECURSE
  "CMakeFiles/bench_breach.dir/bench_breach.cpp.o"
  "CMakeFiles/bench_breach.dir/bench_breach.cpp.o.d"
  "bench_breach"
  "bench_breach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
