# Empty compiler generated dependencies file for bench_dns_privacy.
# This may be replaced when dependencies are built.
