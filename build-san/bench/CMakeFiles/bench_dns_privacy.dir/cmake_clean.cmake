file(REMOVE_RECURSE
  "CMakeFiles/bench_dns_privacy.dir/bench_dns_privacy.cpp.o"
  "CMakeFiles/bench_dns_privacy.dir/bench_dns_privacy.cpp.o.d"
  "bench_dns_privacy"
  "bench_dns_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dns_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
