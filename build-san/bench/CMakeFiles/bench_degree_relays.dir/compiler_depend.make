# Empty compiler generated dependencies file for bench_degree_relays.
# This may be replaced when dependencies are built.
