file(REMOVE_RECURSE
  "CMakeFiles/bench_degree_relays.dir/bench_degree_relays.cpp.o"
  "CMakeFiles/bench_degree_relays.dir/bench_degree_relays.cpp.o.d"
  "bench_degree_relays"
  "bench_degree_relays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degree_relays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
