
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_crypto.cpp" "bench/CMakeFiles/bench_crypto.dir/bench_crypto.cpp.o" "gcc" "bench/CMakeFiles/bench_crypto.dir/bench_crypto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/systems/CMakeFiles/decoupling_systems.dir/DependInfo.cmake"
  "/root/repo/build-san/src/hpke/CMakeFiles/decoupling_hpke.dir/DependInfo.cmake"
  "/root/repo/build-san/src/crypto/CMakeFiles/decoupling_crypto.dir/DependInfo.cmake"
  "/root/repo/build-san/src/net/CMakeFiles/decoupling_net.dir/DependInfo.cmake"
  "/root/repo/build-san/src/obs/CMakeFiles/decoupling_obs.dir/DependInfo.cmake"
  "/root/repo/build-san/src/http/CMakeFiles/decoupling_http.dir/DependInfo.cmake"
  "/root/repo/build-san/src/dns/CMakeFiles/decoupling_dns.dir/DependInfo.cmake"
  "/root/repo/build-san/src/core/CMakeFiles/decoupling_core.dir/DependInfo.cmake"
  "/root/repo/build-san/src/common/CMakeFiles/decoupling_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
