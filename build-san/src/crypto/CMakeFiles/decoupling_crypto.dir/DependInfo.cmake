
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/aead.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/aead.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/blind_rsa.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/blind_rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/blind_rsa.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/csprng.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/csprng.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/csprng.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/hkdf.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/poly1305.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/poly1305.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/poly1305.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/decoupling_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/decoupling_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/common/CMakeFiles/decoupling_common.dir/DependInfo.cmake"
  "/root/repo/build-san/src/obs/CMakeFiles/decoupling_obs.dir/DependInfo.cmake"
  "/root/repo/build-san/src/core/CMakeFiles/decoupling_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
