# Empty dependencies file for decoupling_crypto.
# This may be replaced when dependencies are built.
