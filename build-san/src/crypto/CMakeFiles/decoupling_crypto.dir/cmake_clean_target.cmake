file(REMOVE_RECURSE
  "libdecoupling_crypto.a"
)
