file(REMOVE_RECURSE
  "CMakeFiles/decoupling_crypto.dir/aead.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/bigint.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/blind_rsa.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/blind_rsa.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/csprng.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/csprng.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/hmac.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/rsa.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/sha256.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/sha512.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/decoupling_crypto.dir/x25519.cpp.o"
  "CMakeFiles/decoupling_crypto.dir/x25519.cpp.o.d"
  "libdecoupling_crypto.a"
  "libdecoupling_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
