# Empty dependencies file for decoupling_common.
# This may be replaced when dependencies are built.
