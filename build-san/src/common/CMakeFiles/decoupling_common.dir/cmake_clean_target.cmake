file(REMOVE_RECURSE
  "libdecoupling_common.a"
)
