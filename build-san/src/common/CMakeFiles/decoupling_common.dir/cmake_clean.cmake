file(REMOVE_RECURSE
  "CMakeFiles/decoupling_common.dir/bytes.cpp.o"
  "CMakeFiles/decoupling_common.dir/bytes.cpp.o.d"
  "CMakeFiles/decoupling_common.dir/rng.cpp.o"
  "CMakeFiles/decoupling_common.dir/rng.cpp.o.d"
  "libdecoupling_common.a"
  "libdecoupling_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
