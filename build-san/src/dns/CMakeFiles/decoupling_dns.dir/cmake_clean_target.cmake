file(REMOVE_RECURSE
  "libdecoupling_dns.a"
)
