# Empty dependencies file for decoupling_dns.
# This may be replaced when dependencies are built.
