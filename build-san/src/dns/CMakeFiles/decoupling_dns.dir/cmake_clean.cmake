file(REMOVE_RECURSE
  "CMakeFiles/decoupling_dns.dir/message.cpp.o"
  "CMakeFiles/decoupling_dns.dir/message.cpp.o.d"
  "CMakeFiles/decoupling_dns.dir/zone.cpp.o"
  "CMakeFiles/decoupling_dns.dir/zone.cpp.o.d"
  "libdecoupling_dns.a"
  "libdecoupling_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
