# Empty dependencies file for decoupling_obs.
# This may be replaced when dependencies are built.
