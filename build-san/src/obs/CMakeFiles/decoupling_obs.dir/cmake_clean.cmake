file(REMOVE_RECURSE
  "CMakeFiles/decoupling_obs.dir/flow.cpp.o"
  "CMakeFiles/decoupling_obs.dir/flow.cpp.o.d"
  "CMakeFiles/decoupling_obs.dir/log.cpp.o"
  "CMakeFiles/decoupling_obs.dir/log.cpp.o.d"
  "CMakeFiles/decoupling_obs.dir/metrics.cpp.o"
  "CMakeFiles/decoupling_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/decoupling_obs.dir/trace.cpp.o"
  "CMakeFiles/decoupling_obs.dir/trace.cpp.o.d"
  "libdecoupling_obs.a"
  "libdecoupling_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
