file(REMOVE_RECURSE
  "libdecoupling_obs.a"
)
