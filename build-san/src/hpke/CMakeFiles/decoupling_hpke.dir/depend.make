# Empty dependencies file for decoupling_hpke.
# This may be replaced when dependencies are built.
