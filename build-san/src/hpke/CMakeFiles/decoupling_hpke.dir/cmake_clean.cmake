file(REMOVE_RECURSE
  "CMakeFiles/decoupling_hpke.dir/hpke.cpp.o"
  "CMakeFiles/decoupling_hpke.dir/hpke.cpp.o.d"
  "libdecoupling_hpke.a"
  "libdecoupling_hpke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_hpke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
