file(REMOVE_RECURSE
  "libdecoupling_hpke.a"
)
