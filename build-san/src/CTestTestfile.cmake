# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-san/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("crypto")
subdirs("hpke")
subdirs("net")
subdirs("http")
subdirs("dns")
subdirs("core")
subdirs("systems")
