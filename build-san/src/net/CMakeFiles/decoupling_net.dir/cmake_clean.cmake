file(REMOVE_RECURSE
  "CMakeFiles/decoupling_net.dir/address.cpp.o"
  "CMakeFiles/decoupling_net.dir/address.cpp.o.d"
  "CMakeFiles/decoupling_net.dir/engine.cpp.o"
  "CMakeFiles/decoupling_net.dir/engine.cpp.o.d"
  "CMakeFiles/decoupling_net.dir/faults.cpp.o"
  "CMakeFiles/decoupling_net.dir/faults.cpp.o.d"
  "CMakeFiles/decoupling_net.dir/pool.cpp.o"
  "CMakeFiles/decoupling_net.dir/pool.cpp.o.d"
  "CMakeFiles/decoupling_net.dir/sim.cpp.o"
  "CMakeFiles/decoupling_net.dir/sim.cpp.o.d"
  "libdecoupling_net.a"
  "libdecoupling_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
