# Empty dependencies file for decoupling_net.
# This may be replaced when dependencies are built.
