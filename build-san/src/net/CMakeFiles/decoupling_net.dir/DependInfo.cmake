
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/net/CMakeFiles/decoupling_net.dir/address.cpp.o" "gcc" "src/net/CMakeFiles/decoupling_net.dir/address.cpp.o.d"
  "/root/repo/src/net/engine.cpp" "src/net/CMakeFiles/decoupling_net.dir/engine.cpp.o" "gcc" "src/net/CMakeFiles/decoupling_net.dir/engine.cpp.o.d"
  "/root/repo/src/net/faults.cpp" "src/net/CMakeFiles/decoupling_net.dir/faults.cpp.o" "gcc" "src/net/CMakeFiles/decoupling_net.dir/faults.cpp.o.d"
  "/root/repo/src/net/pool.cpp" "src/net/CMakeFiles/decoupling_net.dir/pool.cpp.o" "gcc" "src/net/CMakeFiles/decoupling_net.dir/pool.cpp.o.d"
  "/root/repo/src/net/sim.cpp" "src/net/CMakeFiles/decoupling_net.dir/sim.cpp.o" "gcc" "src/net/CMakeFiles/decoupling_net.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/common/CMakeFiles/decoupling_common.dir/DependInfo.cmake"
  "/root/repo/build-san/src/obs/CMakeFiles/decoupling_obs.dir/DependInfo.cmake"
  "/root/repo/build-san/src/core/CMakeFiles/decoupling_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
