file(REMOVE_RECURSE
  "libdecoupling_net.a"
)
