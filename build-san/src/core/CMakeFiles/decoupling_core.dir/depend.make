# Empty dependencies file for decoupling_core.
# This may be replaced when dependencies are built.
