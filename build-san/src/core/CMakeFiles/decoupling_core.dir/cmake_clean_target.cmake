file(REMOVE_RECURSE
  "libdecoupling_core.a"
)
