
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/decoupling_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/decoupling_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/knowledge.cpp" "src/core/CMakeFiles/decoupling_core.dir/knowledge.cpp.o" "gcc" "src/core/CMakeFiles/decoupling_core.dir/knowledge.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/decoupling_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/decoupling_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/observation.cpp" "src/core/CMakeFiles/decoupling_core.dir/observation.cpp.o" "gcc" "src/core/CMakeFiles/decoupling_core.dir/observation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/common/CMakeFiles/decoupling_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
