file(REMOVE_RECURSE
  "CMakeFiles/decoupling_core.dir/analysis.cpp.o"
  "CMakeFiles/decoupling_core.dir/analysis.cpp.o.d"
  "CMakeFiles/decoupling_core.dir/knowledge.cpp.o"
  "CMakeFiles/decoupling_core.dir/knowledge.cpp.o.d"
  "CMakeFiles/decoupling_core.dir/metrics.cpp.o"
  "CMakeFiles/decoupling_core.dir/metrics.cpp.o.d"
  "CMakeFiles/decoupling_core.dir/observation.cpp.o"
  "CMakeFiles/decoupling_core.dir/observation.cpp.o.d"
  "libdecoupling_core.a"
  "libdecoupling_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
