file(REMOVE_RECURSE
  "CMakeFiles/decoupling_http.dir/message.cpp.o"
  "CMakeFiles/decoupling_http.dir/message.cpp.o.d"
  "libdecoupling_http.a"
  "libdecoupling_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
