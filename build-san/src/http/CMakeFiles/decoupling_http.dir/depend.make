# Empty dependencies file for decoupling_http.
# This may be replaced when dependencies are built.
