file(REMOVE_RECURSE
  "libdecoupling_http.a"
)
