file(REMOVE_RECURSE
  "CMakeFiles/decoupling_systems.dir/channel.cpp.o"
  "CMakeFiles/decoupling_systems.dir/channel.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/ecash/ecash.cpp.o"
  "CMakeFiles/decoupling_systems.dir/ecash/ecash.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/ech/ech.cpp.o"
  "CMakeFiles/decoupling_systems.dir/ech/ech.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/mixnet/circuit.cpp.o"
  "CMakeFiles/decoupling_systems.dir/mixnet/circuit.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/mixnet/mixnet.cpp.o"
  "CMakeFiles/decoupling_systems.dir/mixnet/mixnet.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/mpr/mpr.cpp.o"
  "CMakeFiles/decoupling_systems.dir/mpr/mpr.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/odoh/odoh.cpp.o"
  "CMakeFiles/decoupling_systems.dir/odoh/odoh.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/ohttp/ohttp.cpp.o"
  "CMakeFiles/decoupling_systems.dir/ohttp/ohttp.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/pgpp/pgpp.cpp.o"
  "CMakeFiles/decoupling_systems.dir/pgpp/pgpp.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/ppm/field.cpp.o"
  "CMakeFiles/decoupling_systems.dir/ppm/field.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/ppm/ppm.cpp.o"
  "CMakeFiles/decoupling_systems.dir/ppm/ppm.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/privacypass/privacypass.cpp.o"
  "CMakeFiles/decoupling_systems.dir/privacypass/privacypass.cpp.o.d"
  "CMakeFiles/decoupling_systems.dir/retry.cpp.o"
  "CMakeFiles/decoupling_systems.dir/retry.cpp.o.d"
  "libdecoupling_systems.a"
  "libdecoupling_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupling_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
