
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/channel.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/channel.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/channel.cpp.o.d"
  "/root/repo/src/systems/ecash/ecash.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/ecash/ecash.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/ecash/ecash.cpp.o.d"
  "/root/repo/src/systems/ech/ech.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/ech/ech.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/ech/ech.cpp.o.d"
  "/root/repo/src/systems/mixnet/circuit.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/mixnet/circuit.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/mixnet/circuit.cpp.o.d"
  "/root/repo/src/systems/mixnet/mixnet.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/mixnet/mixnet.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/mixnet/mixnet.cpp.o.d"
  "/root/repo/src/systems/mpr/mpr.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/mpr/mpr.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/mpr/mpr.cpp.o.d"
  "/root/repo/src/systems/odoh/odoh.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/odoh/odoh.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/odoh/odoh.cpp.o.d"
  "/root/repo/src/systems/ohttp/ohttp.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/ohttp/ohttp.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/ohttp/ohttp.cpp.o.d"
  "/root/repo/src/systems/pgpp/pgpp.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/pgpp/pgpp.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/pgpp/pgpp.cpp.o.d"
  "/root/repo/src/systems/ppm/field.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/ppm/field.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/ppm/field.cpp.o.d"
  "/root/repo/src/systems/ppm/ppm.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/ppm/ppm.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/ppm/ppm.cpp.o.d"
  "/root/repo/src/systems/privacypass/privacypass.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/privacypass/privacypass.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/privacypass/privacypass.cpp.o.d"
  "/root/repo/src/systems/retry.cpp" "src/systems/CMakeFiles/decoupling_systems.dir/retry.cpp.o" "gcc" "src/systems/CMakeFiles/decoupling_systems.dir/retry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/common/CMakeFiles/decoupling_common.dir/DependInfo.cmake"
  "/root/repo/build-san/src/obs/CMakeFiles/decoupling_obs.dir/DependInfo.cmake"
  "/root/repo/build-san/src/crypto/CMakeFiles/decoupling_crypto.dir/DependInfo.cmake"
  "/root/repo/build-san/src/hpke/CMakeFiles/decoupling_hpke.dir/DependInfo.cmake"
  "/root/repo/build-san/src/net/CMakeFiles/decoupling_net.dir/DependInfo.cmake"
  "/root/repo/build-san/src/http/CMakeFiles/decoupling_http.dir/DependInfo.cmake"
  "/root/repo/build-san/src/dns/CMakeFiles/decoupling_dns.dir/DependInfo.cmake"
  "/root/repo/build-san/src/core/CMakeFiles/decoupling_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
