file(REMOVE_RECURSE
  "libdecoupling_systems.a"
)
