# Empty dependencies file for decoupling_systems.
# This may be replaced when dependencies are built.
